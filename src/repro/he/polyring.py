"""RNS arithmetic in the ciphertext ring ``R_q = Z_q[x] / (x^n + 1)``.

The coefficient modulus ``q`` is a product of word-size NTT-friendly primes.
A ring element is stored as an int64 numpy array of per-prime residues with
shape ``(..., k, n)`` where ``k = len(primes)``; leading axes batch many
polynomials so whole ciphertext images can be processed in single numpy
calls.  Elements exist in either *coefficient* or *NTT (evaluation)* domain;
the domain is tracked by the caller (see :class:`repro.he.context.Ciphertext`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.he import modmath
from repro.he.ntt import NttPlan, negacyclic_convolve_exact


class PolyContext:
    """Vectorized RNS polynomial arithmetic for a fixed ``(n, primes)`` pair.

    Args:
        n: polynomial degree, a power of two.
        primes: distinct NTT-friendly primes (each ``≡ 1 mod 2n``, < 2^31)
            whose product is the coefficient modulus ``q``.
    """

    def __init__(self, n: int, primes: Sequence[int]) -> None:
        if len(set(primes)) != len(primes):
            raise ParameterError("coefficient primes must be distinct")
        self.n = n
        self.primes = np.array(sorted(primes), dtype=np.int64)
        self.k = len(primes)
        self.q = modmath.product(primes)
        self.plans = [NttPlan(n, int(p)) for p in self.primes]
        self._p_col = self.primes.reshape(self.k, 1)
        # CRT lift weights: w_i = (q / p_i) * inv(q / p_i, p_i), so that
        # value = sum(r_i * w_i) mod q.
        self._crt_weights = np.array(
            [
                (self.q // int(p)) * modmath.invert_mod(self.q // int(p), int(p))
                for p in self.primes
            ],
            dtype=object,
        )

    # ------------------------------------------------------------------
    # construction / sampling
    # ------------------------------------------------------------------
    def zeros(self, *leading: int) -> np.ndarray:
        """A zero element (or batch of them) in RNS form."""
        return np.zeros((*leading, self.k, self.n), dtype=np.int64)

    def from_int_coeffs(self, coeffs: np.ndarray) -> np.ndarray:
        """Reduce integer coefficients (shape ``(..., n)``, possibly signed
        Python bigints) into RNS residues of shape ``(..., k, n)``."""
        coeffs = np.asarray(coeffs)
        if coeffs.shape[-1] != self.n:
            raise ParameterError(f"expected degree {self.n}, got {coeffs.shape[-1]}")
        out = np.empty((*coeffs.shape[:-1], self.k, self.n), dtype=np.int64)
        if coeffs.dtype == object:
            for i, p in enumerate(self.primes):
                out[..., i, :] = (coeffs % int(p)).astype(np.int64)
        else:
            coeffs = coeffs.astype(np.int64)
            for i, p in enumerate(self.primes):
                out[..., i, :] = coeffs % int(p)
        return out

    def from_scalar(self, value: int) -> np.ndarray:
        """Constant polynomial ``value`` in RNS form."""
        out = self.zeros()
        out[:, 0] = np.array([value % int(p) for p in self.primes], dtype=np.int64)
        return out

    def sample_uniform(self, rng: np.random.Generator, *leading: int) -> np.ndarray:
        """Uniform element of R_q (independent residue per prime)."""
        out = np.empty((*leading, self.k, self.n), dtype=np.int64)
        for i, p in enumerate(self.primes):
            out[..., i, :] = rng.integers(0, int(p), size=(*leading, self.n))
        return out

    def sample_noise(
        self, rng: np.random.Generator, stddev: float, *leading: int
    ) -> np.ndarray:
        """Truncated discrete Gaussian error polynomial (the scheme's chi)."""
        bound = int(6 * stddev)
        raw = np.rint(rng.normal(0.0, stddev, size=(*leading, self.n))).astype(np.int64)
        np.clip(raw, -bound, bound, out=raw)
        return self.from_signed_small(raw)

    def sample_ternary(self, rng: np.random.Generator, *leading: int) -> np.ndarray:
        """Uniform ternary polynomial with coefficients in {-1, 0, 1}."""
        raw = rng.integers(-1, 2, size=(*leading, self.n)).astype(np.int64)
        return self.from_signed_small(raw)

    def from_signed_small(self, coeffs: np.ndarray) -> np.ndarray:
        """RNS form of small signed int64 coefficients (|c| < min prime)."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        expanded = coeffs[..., None, :] % self._p_col
        return expanded

    # ------------------------------------------------------------------
    # ring operations (domain-agnostic: valid in both coeff and NTT form)
    # ------------------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a + b) % self._p_col

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a - b) % self._p_col

    def neg(self, a: np.ndarray) -> np.ndarray:
        return (-a) % self._p_col

    def mul_scalar(self, a: np.ndarray, value: int) -> np.ndarray:
        scalars = np.array(
            [value % int(p) for p in self.primes], dtype=np.int64
        ).reshape(self.k, 1)
        return a * scalars % self._p_col

    def pointwise_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Coefficient-wise product; this is ring multiplication iff both
        operands are in NTT domain."""
        return a * b % self._p_col

    def reduce_sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        """Sum a batch of ring elements along one leading (batch) axis.

        Equivalent to folding :meth:`add` over that axis but performed as a
        single numpy reduction.  ``axis`` must address a batch axis, not the
        trailing ``(k, n)`` residue/coefficient axes.
        """
        axis = axis % a.ndim
        if axis >= a.ndim - 2:
            raise ParameterError(
                "reduce_sum operates on batch axes; the trailing two axes "
                "are the RNS residue and coefficient dimensions"
            )
        return np.add.reduce(a, axis=axis) % self._p_col

    # ------------------------------------------------------------------
    # domain conversion
    # ------------------------------------------------------------------
    def ntt(self, a: np.ndarray) -> np.ndarray:
        out = np.empty_like(a)
        for i, plan in enumerate(self.plans):
            out[..., i, :] = plan.forward(a[..., i, :])
        return out

    def intt(self, a: np.ndarray) -> np.ndarray:
        out = np.empty_like(a)
        for i, plan in enumerate(self.plans):
            out[..., i, :] = plan.inverse(a[..., i, :])
        return out

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full ring multiplication of coefficient-domain operands."""
        return self.intt(self.pointwise_mul(self.ntt(a), self.ntt(b)))

    # ------------------------------------------------------------------
    # big-integer bridge (decrypt, tensor product, relinearization digits)
    # ------------------------------------------------------------------
    def to_bigint(self, a: np.ndarray) -> np.ndarray:
        """CRT-lift RNS residues to object-array coefficients in ``[0, q)``.

        Input shape ``(..., k, n)`` -> output shape ``(..., n)``.
        """
        acc = np.zeros((*a.shape[:-2], self.n), dtype=object)
        for i in range(self.k):
            acc = acc + a[..., i, :].astype(object) * self._crt_weights[i]
        return acc % self.q

    def to_bigint_centered(self, a: np.ndarray) -> np.ndarray:
        """Like :meth:`to_bigint` but mapped into ``(-q/2, q/2]``."""
        lifted = self.to_bigint(a)
        return np.where(lifted > self.q // 2, lifted - self.q, lifted)

    def convolve_exact(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact signed negacyclic convolution of centered bigint coefficient
        arrays (used by the FV tensor product)."""
        return negacyclic_convolve_exact(a, b, self.n, self.q // 2 + 1)

    def scale_and_round(self, coeffs: np.ndarray, numer: int, denom: int) -> np.ndarray:
        """Round ``coeffs * numer / denom`` to nearest integer and reduce to RNS.

        Implements FV's ``round(t/q * .)`` step on exact integer coefficients.
        """
        scaled = coeffs * numer
        half = denom // 2
        rounded = np.where(
            scaled >= 0, (scaled + half) // denom, -((-scaled + half) // denom)
        )
        return self.from_int_coeffs(rounded)
