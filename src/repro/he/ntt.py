"""Negacyclic number-theoretic transforms over word-size primes.

The FV scheme works in ``R_q = Z_q[x] / (x^n + 1)``.  Multiplication in that
ring is a *negacyclic* convolution, computed here with the standard
Longa-Naehrig NTT: powers of a primitive ``2n``-th root of unity ``psi`` are
folded into the butterfly tables, so no separate pre/post twisting pass is
needed.

All transforms are vectorized with numpy over arbitrary leading axes: an
array of shape ``(..., n)`` is transformed along its last axis in one call.
Primes are restricted to < 2^31 so every intermediate product fits in int64.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.he import modmath


def bit_reverse_indices(n: int) -> np.ndarray:
    """Indices ``[bitrev(0), ..., bitrev(n-1)]`` for an ``n``-point transform."""
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    result = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        result = (result << 1) | (indices & 1)
        indices >>= 1
    return result


class NttPlan:
    """Precomputed tables for negacyclic NTTs of length ``n`` modulo ``prime``.

    Attributes:
        n: transform length (power of two).
        prime: NTT-friendly prime, ``prime ≡ 1 (mod 2n)`` and ``prime < 2^31``.
    """

    def __init__(self, n: int, prime: int) -> None:
        if n < 2 or n & (n - 1):
            raise ParameterError(f"n must be a power of two, got {n}")
        if prime >= 1 << 31:
            raise ParameterError(f"prime must be < 2^31 for int64 safety, got {prime}")
        if (prime - 1) % (2 * n):
            raise ParameterError(f"prime {prime} does not support a {2 * n}-point NTT")
        self.n = n
        self.prime = prime
        psi = modmath.root_of_unity(2 * n, prime)
        psi_inv = modmath.invert_mod(psi, prime)
        rev = bit_reverse_indices(n)
        powers = self._power_table(psi)
        inv_powers = self._power_table(psi_inv)
        # psi^bitrev(i) tables drive the merged-twist butterflies.
        self._psi_rev = powers[rev]
        self._psi_inv_rev = inv_powers[rev]
        self._n_inv = modmath.invert_mod(n, prime)

    def _power_table(self, base: int) -> np.ndarray:
        table = np.empty(self.n, dtype=np.int64)
        value = 1
        for i in range(self.n):
            table[i] = value
            value = value * base % self.prime
        return table

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic NTT along the last axis; output in bit-reversed order."""
        a = self._checked_copy(values)
        p = self.prime
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            view = a.reshape(*a.shape[:-1], m, 2, t)
            s = self._psi_rev[m : 2 * m].reshape(m, 1)
            u = view[..., 0, :]
            v = view[..., 1, :] * s % p
            lo = (u + v) % p
            hi = (u - v) % p
            view[..., 0, :] = lo
            view[..., 1, :] = hi
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`; accepts bit-reversed order, returns
        natural-order coefficients."""
        a = self._checked_copy(values)
        p = self.prime
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            view = a.reshape(*a.shape[:-1], h, 2, t)
            s = self._psi_inv_rev[h : 2 * h].reshape(h, 1)
            u = view[..., 0, :]
            v = view[..., 1, :]
            lo = (u + v) % p
            hi = (u - v) % p * s % p
            view[..., 0, :] = lo
            view[..., 1, :] = hi
            t *= 2
            m = h
        return a * self._n_inv % p

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic convolution of coefficient-domain inputs."""
        return self.inverse(self.forward(a) * self.forward(b) % self.prime)

    def _checked_copy(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.shape[-1] != self.n:
            raise ParameterError(
                f"last axis must have length {self.n}, got {values.shape[-1]}"
            )
        return values.astype(np.int64, copy=True)


def negacyclic_convolve_exact(
    a: np.ndarray, b: np.ndarray, n: int, bound: int
) -> np.ndarray:
    """Exact integer negacyclic convolution of big-integer polynomials.

    Used for the FV tensor product, whose coefficients (up to ``n * (q/2)^2``)
    overflow int64.  The inputs are object arrays of Python ints with absolute
    values below ``bound``; the product is assembled by CRT over enough
    word-size NTT primes to cover the worst-case coefficient.

    Args:
        a, b: object arrays with shape ``(..., n)`` holding Python ints.
        n: polynomial degree (power of two).
        bound: strict bound on ``abs`` of every input coefficient.

    Returns:
        An object array of exact (signed) product coefficients.
    """
    max_coeff = 2 * n * bound * bound  # symmetric range plus safety factor
    plans = _aux_plans(n, max_coeff)
    primes = [plan.prime for plan in plans]
    residues = []
    for plan in plans:
        ra = (a % plan.prime).astype(np.int64)
        rb = (b % plan.prime).astype(np.int64)
        residues.append(plan.multiply(ra, rb))
    modulus = modmath.product(primes)
    lifted = np.zeros(residues[0].shape, dtype=object)
    for res, prime in zip(residues, primes):
        partial = modulus // prime
        weight = partial * modmath.invert_mod(partial, prime)
        lifted = lifted + res.astype(object) * weight
    lifted %= modulus
    return np.where(lifted > modulus // 2, lifted - modulus, lifted)


_AUX_PLAN_CACHE: dict[tuple[int, int], list[NttPlan]] = {}


def _aux_plans(n: int, max_coeff: int) -> list[NttPlan]:
    """NTT plans whose prime product exceeds ``2 * max_coeff``."""
    needed_bits = max_coeff.bit_length() + 1
    count = needed_bits // 29 + 1
    key = (n, count)
    if key not in _AUX_PLAN_CACHE:
        primes = modmath.ntt_primes(30, n, count)
        _AUX_PLAN_CACHE[key] = [NttPlan(n, p) for p in primes]
    return _AUX_PLAN_CACHE[key]
