"""Negacyclic number-theoretic transforms over word-size primes.

The FV scheme works in ``R_q = Z_q[x] / (x^n + 1)``.  Multiplication in that
ring is a *negacyclic* convolution, computed here with the standard
Longa-Naehrig NTT: powers of a primitive ``2n``-th root of unity ``psi`` are
folded into the butterfly tables, so no separate pre/post twisting pass is
needed.

All transforms are vectorized with numpy over arbitrary leading axes: an
array of shape ``(..., n)`` is transformed along its last axis in one call.
Primes are restricted to < 2^31 so every intermediate product fits in int64.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.he import modmath


def bit_reverse_indices(n: int) -> np.ndarray:
    """Indices ``[bitrev(0), ..., bitrev(n-1)]`` for an ``n``-point transform."""
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    result = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        result = (result << 1) | (indices & 1)
        indices >>= 1
    return result


class NttPlan:
    """Precomputed tables for negacyclic NTTs of length ``n`` modulo ``prime``.

    Attributes:
        n: transform length (power of two).
        prime: NTT-friendly prime, ``prime ≡ 1 (mod 2n)`` and ``prime < 2^31``.
    """

    def __init__(self, n: int, prime: int) -> None:
        if n < 2 or n & (n - 1):
            raise ParameterError(f"n must be a power of two, got {n}")
        if prime >= 1 << 31:
            raise ParameterError(f"prime must be < 2^31 for int64 safety, got {prime}")
        if (prime - 1) % (2 * n):
            raise ParameterError(f"prime {prime} does not support a {2 * n}-point NTT")
        self.n = n
        self.prime = prime
        psi = modmath.root_of_unity(2 * n, prime)
        psi_inv = modmath.invert_mod(psi, prime)
        rev = bit_reverse_indices(n)
        powers = self._power_table(psi)
        inv_powers = self._power_table(psi_inv)
        # psi^bitrev(i) tables drive the merged-twist butterflies.
        self._psi_rev = powers[rev]
        self._psi_inv_rev = inv_powers[rev]
        self._n_inv = modmath.invert_mod(n, prime)

    def _power_table(self, base: int) -> np.ndarray:
        table = np.empty(self.n, dtype=np.int64)
        value = 1
        for i in range(self.n):
            table[i] = value
            value = value * base % self.prime
        return table

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic NTT along the last axis; output in bit-reversed order."""
        a = self._checked_copy(values)
        p = self.prime
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            view = a.reshape(*a.shape[:-1], m, 2, t)
            s = self._psi_rev[m : 2 * m].reshape(m, 1)
            u = view[..., 0, :]
            v = view[..., 1, :] * s % p
            lo = (u + v) % p
            hi = (u - v) % p
            view[..., 0, :] = lo
            view[..., 1, :] = hi
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`; accepts bit-reversed order, returns
        natural-order coefficients."""
        a = self._checked_copy(values)
        p = self.prime
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            view = a.reshape(*a.shape[:-1], h, 2, t)
            s = self._psi_inv_rev[h : 2 * h].reshape(h, 1)
            u = view[..., 0, :]
            v = view[..., 1, :]
            lo = (u + v) % p
            hi = (u - v) % p * s % p
            view[..., 0, :] = lo
            view[..., 1, :] = hi
            t *= 2
            m = h
        return a * self._n_inv % p

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic convolution of coefficient-domain inputs."""
        return self.inverse(self.forward(a) * self.forward(b) % self.prime)

    def _checked_copy(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.shape[-1] != self.n:
            raise ParameterError(
                f"last axis must have length {self.n}, got {values.shape[-1]}"
            )
        return values.astype(np.int64, copy=True)


class StackedNttPlan:
    """Prime-stacked negacyclic NTT over a whole RNS residue tensor.

    Where :class:`NttPlan` transforms one prime's residues at a time, this
    plan stacks the ``k`` per-prime twiddle tables into ``(k, n)`` arrays and
    runs a **single** butterfly loop of ``log n`` numpy stages over the whole
    ``(..., k, n)`` tensor, with *lazy reduction*: butterflies add/subtract
    without reducing, a per-prime offset keeps values nonnegative, and a full
    ``%`` pass runs only when the tracked bound would make the next twiddle
    multiplication overflow int64.

    Value-range invariants (``p_max`` = largest prime, all primes < 2^31):

    * residues enter every stage below a tracked bound ``B`` (initially
      ``p_max``);
    * the forward butterfly reduces the twiddle product mod p, so both
      outputs stay below ``B + p_max`` -- ``B`` grows by ``p_max`` per stage;
    * the inverse butterfly defers both halves: ``u + v < 2B`` and
      ``(u - v + off) * s`` requires ``2B + p_max <= MULT_SAFE`` first;
    * before any multiplication by a twiddle/scalar ``s < p_max`` the operand
      must be below ``MULT_SAFE = (2^63 - 1) // (p_max - 1)`` (>= 2^32 for
      31-bit primes, ~2^33 for the 30-bit default), which is when the
      deferred ``%`` pass runs -- once every few stages instead of three
      times per stage.

    Outputs are fully reduced to ``[0, p)`` and **bit-identical** to running
    the per-prime :class:`NttPlan` (which remains the single-prime reference
    implementation) over each residue row.
    """

    def __init__(self, n: int, primes, plans: list[NttPlan] | None = None) -> None:
        if plans is None:
            plans = [NttPlan(n, int(p)) for p in primes]
        self.n = n
        self.k = len(plans)
        self.primes = np.array([plan.prime for plan in plans], dtype=np.int64)
        self._prime_list = [plan.prime for plan in plans]
        self._p_max = max(self._prime_list)
        # Largest safe multiplicand for v * s with s < p_max (int64 ceiling).
        self._mult_safe = ((1 << 63) - 1) // (self._p_max - 1)
        assert self._mult_safe >= 1 << 32, "primes must be < 2^31"
        self._p_off = self.primes.reshape(self.k, 1, 1, 1)
        self._psi_rev = np.stack([plan._psi_rev for plan in plans])
        self._psi_inv_rev = np.stack([plan._psi_inv_rev for plan in plans])
        self._n_inv = [plan._n_inv for plan in plans]
        self._coeff_weight_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _prime_front(self, values: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        """Copy ``(..., k, n)`` into prime-major ``(k, B, n)`` layout so the
        deferred per-prime ``%`` passes run on contiguous rows with a scalar
        modulus (numpy's fast path) while butterflies span all primes."""
        values = np.asarray(values)
        if values.ndim < 2 or values.shape[-1] != self.n or values.shape[-2] != self.k:
            raise ParameterError(
                f"expected trailing shape (k={self.k}, n={self.n}), "
                f"got {values.shape}"
            )
        batch = values.shape[:-2]
        x = np.moveaxis(values, -2, 0).astype(np.int64, order="C", copy=True)
        return x.reshape(self.k, -1, self.n), batch

    def _restore(self, x: np.ndarray, batch: tuple[int, ...]) -> np.ndarray:
        out = np.moveaxis(x.reshape(self.k, *batch, self.n), 0, -2)
        return np.ascontiguousarray(out)

    def _reduce_rows(self, x: np.ndarray) -> None:
        for i, p in enumerate(self._prime_list):
            x[i] %= p

    # ------------------------------------------------------------------
    def forward(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic NTT of every residue row of a ``(..., k, n)`` tensor;
        bit-identical to ``NttPlan.forward`` per prime."""
        x, batch = self._prime_front(values)
        b = x.shape[1]
        bound = self._p_max  # exclusive bound on every element
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            if bound > self._mult_safe:
                self._reduce_rows(x)
                bound = self._p_max
            view = x.reshape(self.k, b, m, 2, t)
            u = view[..., 0, :]
            w = view[..., 1, :] * self._psi_rev[:, None, m : 2 * m, None]
            for i, p in enumerate(self._prime_list):
                w[i] %= p  # w < p; the stage's one reduction pass
            hi = u - w  # > -p_max, lazily fixed up below
            hi += self._p_off  # hi in [0, bound + p), same class mod p
            w += u  # lo in [0, bound + p_max)
            view[..., 0, :] = w
            view[..., 1, :] = hi
            bound += self._p_max
            m *= 2
        self._reduce_rows(x)
        return self._restore(x, batch)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`; bit-identical to ``NttPlan.inverse``
        per prime."""
        x, batch = self._prime_front(values)
        b = x.shape[1]
        bound = self._p_max
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            if 2 * bound + self._p_max > self._mult_safe:
                self._reduce_rows(x)
                bound = self._p_max
            # Per-prime multiple of p lifting u - v (> -bound) to >= 0.
            off = (-(-bound // self.primes) * self.primes).reshape(self.k, 1, 1, 1)
            view = x.reshape(self.k, b, h, 2, t)
            u = view[..., 0, :]
            v = view[..., 1, :]
            d = u - v
            d += off  # d in [0, bound + off) subset [0, 2*bound + p_max)
            d *= self._psi_inv_rev[:, None, h : 2 * h, None]
            for i, p in enumerate(self._prime_list):
                d[i] %= p
            lo = u + v  # < 2 * bound, deferred
            view[..., 0, :] = lo
            view[..., 1, :] = d
            bound *= 2
            t *= 2
            m = h
        if bound > self._mult_safe:
            self._reduce_rows(x)
        for i, p in enumerate(self._prime_list):
            x[i] *= self._n_inv[i]
            x[i] %= p
        return self._restore(x, batch)

    # ------------------------------------------------------------------
    def inverse_coeff_weights(self, index: int) -> np.ndarray:
        """Weights ``W`` of shape ``(k, n)`` such that coefficient ``index``
        of the inverse NTT is ``sum_i X[i] * W[:, i] mod p`` per prime.

        The forward transform stores the evaluation at ``psi^(2*bitrev(i)+1)``
        in slot ``i``, so one inverse-NTT output coefficient is a single
        weighted reduction over the ``n`` slots -- the basis of the O(n)
        constant-coefficient decrypt shortcut (the full ``inverse`` costs
        ``log n`` butterfly stages).
        """
        if not 0 <= index < self.n:
            raise ParameterError(f"coefficient index {index} out of range [0, {self.n})")
        cached = self._coeff_weight_cache.get(index)
        if cached is not None:
            return cached
        rev = bit_reverse_indices(self.n)
        out = np.empty((self.k, self.n), dtype=np.int64)
        for ki, p in enumerate(self._prime_list):
            psi = modmath.root_of_unity(2 * self.n, p)
            psi_inv = modmath.invert_mod(psi, p)
            n_inv = self._n_inv[ki]
            for i in range(self.n):
                exp = (2 * int(rev[i]) + 1) * index
                out[ki, i] = pow(psi_inv, exp, p) * n_inv % p
        out.flags.writeable = False
        self._coeff_weight_cache[index] = out
        return out


def negacyclic_convolve_exact(
    a: np.ndarray, b: np.ndarray, n: int, bound: int
) -> np.ndarray:
    """Exact integer negacyclic convolution of big-integer polynomials.

    Used for the FV tensor product, whose coefficients (up to ``n * (q/2)^2``)
    overflow int64.  The inputs are object arrays of Python ints with absolute
    values below ``bound``; the product is assembled by CRT over enough
    word-size NTT primes to cover the worst-case coefficient.

    Args:
        a, b: object arrays with shape ``(..., n)`` holding Python ints.
        n: polynomial degree (power of two).
        bound: strict bound on ``abs`` of every input coefficient.

    Returns:
        An object array of exact (signed) product coefficients.
    """
    max_coeff = 2 * n * bound * bound  # symmetric range plus safety factor
    plans = _aux_plans(n, max_coeff)
    primes = [plan.prime for plan in plans]
    residues = []
    for plan in plans:
        ra = (a % plan.prime).astype(np.int64)
        rb = (b % plan.prime).astype(np.int64)
        residues.append(plan.multiply(ra, rb))
    modulus = modmath.product(primes)
    lifted = np.zeros(residues[0].shape, dtype=object)
    for res, prime in zip(residues, primes):
        partial = modulus // prime
        weight = partial * modmath.invert_mod(partial, prime)
        lifted = lifted + res.astype(object) * weight
    lifted %= modulus
    return np.where(lifted > modulus // 2, lifted - modulus, lifted)


_AUX_PLAN_CACHE: dict[tuple[int, int], list[NttPlan]] = {}


def _aux_plans(n: int, max_coeff: int) -> list[NttPlan]:
    """NTT plans whose prime product exceeds ``2 * max_coeff``."""
    needed_bits = max_coeff.bit_length() + 1
    count = needed_bits // 29 + 1
    key = (n, count)
    if key not in _AUX_PLAN_CACHE:
        primes = modmath.ntt_primes(30, n, count)
        _AUX_PLAN_CACHE[key] = [NttPlan(n, p) for p in primes]
    return _AUX_PLAN_CACHE[key]
