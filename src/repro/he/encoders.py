"""Plaintext encoders (SEAL-2.1-style).

Three encoders bridge application values and the plaintext ring ``R_t``:

* :class:`ScalarEncoder` -- a value is stored in the constant coefficient.
  This is the encoding the CNN pipelines use for pixels and quantized
  weights: additions and multiplications of ciphertexts then mirror integer
  arithmetic mod ``t`` exactly.
* :class:`IntegerEncoder` -- SEAL's base-``b`` expansion (binary or balanced
  ternary): an integer becomes a low-degree polynomial with digit
  coefficients, so values far larger than ``t`` survive as long as
  coefficient growth stays below ``t``.
* :class:`FractionalEncoder` -- SEAL's fixed-point encoding: the integer part
  occupies low-degree coefficients, the fraction occupies negated top
  coefficients of the ring.

All encoders are batched: array inputs encode to plaintexts with matching
leading axes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.he.context import Context, Plaintext


class ScalarEncoder:
    """Constant-coefficient encoding of integers modulo ``t``.

    Values must lie in the centered range ``(-t/2, t/2]``; decode returns
    centered values, so round-tripping preserves sign.
    """

    def __init__(self, context: Context) -> None:
        self.context = context

    def encode(self, values: np.ndarray | int) -> Plaintext:
        values = np.asarray(values, dtype=np.int64)
        t = self.context.plain_modulus
        limit = t // 2
        if (np.abs(values) > limit).any():
            raise EncodingError(
                f"values exceed the centered plaintext range +-{limit} (t={t}); "
                "requantize with a smaller scale or enlarge plain_modulus"
            )
        coeffs = np.zeros((*values.shape, self.context.poly_degree), dtype=np.int64)
        coeffs[..., 0] = values % t
        return Plaintext(self.context, coeffs)

    def decode(self, plain: Plaintext) -> np.ndarray:
        self.context.check_same(plain.context)
        rest = plain.coeffs[..., 1:]
        if rest.any():
            raise EncodingError(
                "plaintext has non-constant coefficients; it was not produced "
                "by ScalarEncoder (or the computation overflowed the slot)"
            )
        return plain.signed_coeffs()[..., 0].copy()


class IntegerEncoder:
    """Base-``b`` digit encoding of signed integers into polynomials.

    ``base=3`` uses balanced digits in {-1, 0, 1} (SEAL's default), which
    minimizes coefficient magnitude and therefore multiplication-induced
    coefficient growth.  ``base=2`` uses signed binary digits in {-1, 0, 1}
    via the non-adjacent form of negative numbers' absolute value.
    """

    def __init__(self, context: Context, base: int = 3) -> None:
        if base not in (2, 3):
            raise EncodingError(f"IntegerEncoder supports base 2 or 3, got {base}")
        self.context = context
        self.base = base

    def encode(self, value: int) -> Plaintext:
        value = int(value)
        n = self.context.poly_degree
        digits = self._digits(abs(value))
        if len(digits) > n:
            raise EncodingError(f"{value} needs {len(digits)} digits > degree {n}")
        coeffs = np.zeros(n, dtype=np.int64)
        sign = -1 if value < 0 else 1
        t = self.context.plain_modulus
        for i, d in enumerate(digits):
            coeffs[i] = (sign * d) % t
        return Plaintext(self.context, coeffs)

    def _digits(self, value: int) -> list[int]:
        digits = []
        if self.base == 2:
            while value:
                digits.append(value & 1)
                value >>= 1
        else:  # balanced ternary: digits in {-1, 0, 1}
            while value:
                r = value % 3
                if r == 2:
                    r = -1
                digits.append(r)
                value = (value - r) // 3
        return digits

    def decode(self, plain: Plaintext) -> int:
        """Evaluate the polynomial at ``base`` using centered coefficients.

        Raises:
            EncodingError: if any centered coefficient's magnitude reached
                ``t/2`` -- the tell-tale of digit overflow during homomorphic
                arithmetic, after which the value is unrecoverable.
        """
        self.context.check_same(plain.context)
        t = self.context.plain_modulus
        signed = plain.signed_coeffs()
        if (np.abs(signed) >= t // 2).any():
            raise EncodingError("coefficient overflow: |digit| reached t/2")
        value = 0
        for c in signed[::-1]:
            value = value * self.base + int(c)
        return value


class FractionalEncoder:
    """SEAL-style fixed-point fractional encoding.

    The integer part of ``x`` occupies coefficients ``0..integer_coeffs-1``
    (base-``b`` digits), while ``fraction_coeffs`` fractional digits occupy
    the *top* coefficients with flipped sign, exploiting ``x^n = -1``.
    """

    def __init__(
        self,
        context: Context,
        integer_coeffs: int = 64,
        fraction_coeffs: int = 32,
        base: int = 3,
    ) -> None:
        n = context.poly_degree
        if integer_coeffs + fraction_coeffs > n:
            raise EncodingError(
                f"integer_coeffs + fraction_coeffs must be <= degree {n}"
            )
        self.context = context
        self.integer_coeffs = integer_coeffs
        self.fraction_coeffs = fraction_coeffs
        self.base = base
        self._int_encoder = IntegerEncoder(context, base=3 if base == 3 else 2)

    def encode(self, value: float) -> Plaintext:
        n = self.context.poly_degree
        t = self.context.plain_modulus
        int_part = int(np.floor(value))
        frac = value - int_part
        int_plain = self._int_encoder.encode(int_part)
        if np.count_nonzero(int_plain.coeffs[self.integer_coeffs :]):
            raise EncodingError(
                f"integer part {int_part} does not fit in {self.integer_coeffs} digits"
            )
        coeffs = int_plain.coeffs.copy()
        # Fractional digits: greedy base-b expansion, stored negated at the top.
        for i in range(self.fraction_coeffs):
            frac *= self.base
            digit = int(np.floor(frac))
            frac -= digit
            if digit:
                coeffs[n - 1 - i] = (-digit) % t
        return Plaintext(self.context, coeffs)

    def decode(self, plain: Plaintext) -> float:
        self.context.check_same(plain.context)
        n = self.context.poly_degree
        signed = plain.signed_coeffs().astype(np.float64)
        value = 0.0
        for i in range(min(n, self.integer_coeffs + 8) - 1, -1, -1):
            value = value * self.base + signed[i]
        scale = 1.0 / self.base
        for i in range(self.fraction_coeffs + 8):
            idx = n - 1 - i
            if idx < self.integer_coeffs:
                break
            value += -signed[idx] * scale
            scale /= self.base
        return value
