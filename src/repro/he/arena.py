"""Contiguous prime-major ciphertext arena: headers + zero-copy views.

PR 3 stacked every RNS residue into one ``(..., k, n)`` int64 block per
ciphertext; this module extends that layout across *ciphertexts*.  An
:class:`Arena` owns one large flat int64 buffer (private memory, or a
``multiprocessing.shared_memory`` segment) and hands out
:class:`ArenaView` handles: a tiny header (offset + shape) plus a
zero-copy ``numpy`` view into the buffer.  Three things fall out of the
layout:

* **Batch serialization is a header walk plus buffer slices.**  A view's
  payload is already the contiguous little-endian int64 wire format, so
  ``repro.he.serialize`` emits a ``memoryview`` of the buffer instead of
  ``ascontiguousarray(...).tobytes()`` (no copy; pinned by
  ``tests/he/test_serialize.py``).
* **Work units are index ranges over shared memory.**  When the arena is
  ``shared=True``, a flush's independent work units (batch rows, conv
  output rows, FC classes) are ``(offset, shape, rows)`` descriptors a
  ``repro.he.parallel`` worker re-derives views from by segment *name* --
  nothing but a small dict crosses the process boundary.
* **Compaction keeps headers valid.**  Views re-derive their array from
  the current header on every ``.array`` access, so :meth:`Arena.compact`
  may slide live blocks down without invalidating handles.  The aliasing
  rule is the converse: a raw ``numpy`` array captured from ``.array``
  *before* a ``compact()``/``grow`` is a stale alias afterwards -- re-read
  ``view.array`` (property-tested in ``tests/he/test_arena.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ArenaError

_WORD = 8  # bytes per int64 slot


def _words(shape: tuple[int, ...]) -> int:
    return int(np.prod(shape, dtype=np.int64)) if shape else 1


class ArenaView:
    """Header handle for one block: ``(arena, offset, shape)``.

    The array is re-derived from the header on each access, so the handle
    survives arena compaction and growth; only raw arrays captured earlier
    go stale.
    """

    __slots__ = ("_arena", "_block")

    def __init__(self, arena: "Arena", block: "_Block") -> None:
        self._arena = arena
        self._block = block

    @property
    def offset(self) -> int:
        """Block offset in int64 words from the start of the buffer."""
        return self._block.offset

    @property
    def shape(self) -> tuple[int, ...]:
        return self._block.shape

    @property
    def words(self) -> int:
        return self._block.words

    @property
    def live(self) -> bool:
        return self._block.live

    @property
    def array(self) -> np.ndarray:
        """The zero-copy ``numpy`` view for the current header."""
        block = self._block
        if not block.live:
            raise ArenaError("view references a freed arena block")
        flat = self._arena.buffer[block.offset : block.offset + block.words]
        return flat.reshape(block.shape)

    def payload(self) -> memoryview:
        """The block's bytes as one buffer slice (no copy)."""
        block = self._block
        if not block.live:
            raise ArenaError("view references a freed arena block")
        start = block.offset * _WORD
        return self._arena.raw[start : start + block.words * _WORD]


class _Block:
    __slots__ = ("offset", "shape", "words", "live")

    def __init__(self, offset: int, shape: tuple[int, ...]) -> None:
        self.offset = offset
        self.shape = shape
        self.words = _words(shape)
        self.live = True


class Arena:
    """One contiguous int64 buffer with a bump allocator and compaction.

    Args:
        capacity_words: initial buffer size in int64 slots.
        shared: back the buffer with a ``multiprocessing.shared_memory``
            segment so worker processes can attach by :attr:`name`.
        auto_grow: transparently replace the buffer with a larger one
            (live contents preserved, headers unchanged) instead of
            raising :class:`~repro.errors.ArenaError` when full.
    """

    def __init__(
        self,
        capacity_words: int = 1 << 16,
        *,
        shared: bool = False,
        auto_grow: bool = True,
    ) -> None:
        if capacity_words < 1:
            raise ArenaError("arena capacity must be >= 1 word")
        self.shared = shared
        self.auto_grow = auto_grow
        self._shm = None
        self._buffer: np.ndarray | None = None
        self._allocate(capacity_words)
        self._cursor = 0
        self._blocks: list[_Block] = []

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def _allocate(self, capacity_words: int) -> None:
        if self.shared:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=capacity_words * _WORD)
            buffer = np.frombuffer(shm.buf, dtype=np.int64)
            old = self._shm
            self._shm, self._buffer = shm, buffer
            if old is not None:
                try:
                    old.close()
                except BufferError:  # pragma: no cover - caller-held view
                    pass
                old.unlink()
        else:
            self._buffer = np.empty(capacity_words, dtype=np.int64)

    @property
    def buffer(self) -> np.ndarray:
        """The flat int64 buffer (current backing storage)."""
        return self._buffer

    @property
    def raw(self) -> memoryview:
        """The buffer's bytes (for zero-copy serialization slices)."""
        return self._buffer.view(np.uint8).data

    @property
    def name(self) -> str | None:
        """Shared-memory segment name workers attach by (None if private)."""
        return self._shm.name if self._shm is not None else None

    @property
    def capacity_words(self) -> int:
        return int(self._buffer.size)

    @property
    def live_words(self) -> int:
        return sum(b.words for b in self._blocks if b.live)

    @property
    def fragmentation_words(self) -> int:
        """Dead words below the cursor that :meth:`compact` would reclaim."""
        return self._cursor - self.live_words

    def grow(self, min_capacity_words: int) -> None:
        """Replace the buffer with a larger one, preserving live content."""
        new_capacity = max(min_capacity_words, 2 * self.capacity_words)
        old = self._buffer[: self._cursor].copy()
        self._allocate(new_capacity)
        self._buffer[: self._cursor] = old

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, shape: tuple[int, ...]) -> ArenaView:
        """Reserve a block of ``shape`` (contents uninitialized)."""
        shape = tuple(int(dim) for dim in shape)
        if any(dim < 0 for dim in shape):
            raise ArenaError(f"negative dimension in shape {shape}")
        needed = _words(shape)
        if self._cursor + needed > self.capacity_words:
            if self.fragmentation_words >= needed:
                self.compact()
            if self._cursor + needed > self.capacity_words:
                if not self.auto_grow:
                    raise ArenaError(
                        f"arena exhausted: {needed} words requested, "
                        f"{self.capacity_words - self._cursor} free"
                    )
                self.grow(self._cursor + needed)
        block = _Block(self._cursor, shape)
        self._cursor += needed
        self._blocks.append(block)
        return ArenaView(self, block)

    def place(self, array: np.ndarray) -> ArenaView:
        """Copy ``array`` into a fresh block (the one copy it ever needs)."""
        array = np.asarray(array, dtype=np.int64)
        view = self.alloc(array.shape)
        np.copyto(view.array, array)
        return view

    def concat(self, arrays: list[np.ndarray], axis: int = 0) -> ArenaView:
        """Concatenate ``arrays`` along ``axis`` directly into one block.

        The arena equivalent of ``np.concatenate`` for batch staging: each
        source is copied exactly once into its slice of the block, and the
        result is a view (serializable as one buffer slice).
        """
        if not arrays:
            raise ArenaError("concat requires at least one array")
        first = np.asarray(arrays[0])
        if axis != 0:
            raise ArenaError("arena concat supports axis=0 staging only")
        tail = first.shape[1:]
        total = 0
        for arr in arrays:
            arr = np.asarray(arr)
            if arr.shape[1:] != tail:
                raise ArenaError(
                    f"concat shape mismatch: {arr.shape[1:]} vs {tail}"
                )
            total += arr.shape[0]
        view = self.alloc((total, *tail))
        out = view.array
        offset = 0
        for arr in arrays:
            arr = np.asarray(arr)
            np.copyto(out[offset : offset + arr.shape[0]], arr)
            offset += arr.shape[0]
        return view

    def free(self, view: ArenaView) -> None:
        """Mark a view's block dead (reclaimed by :meth:`compact`)."""
        if view._arena is not self:
            raise ArenaError("view belongs to a different arena")
        if not view._block.live:
            raise ArenaError("double free of an arena block")
        view._block.live = False

    def reset(self) -> None:
        """Drop every block and rewind the cursor (scratch-arena reuse)."""
        for block in self._blocks:
            block.live = False
        self._blocks.clear()
        self._cursor = 0

    def compact(self) -> int:
        """Slide live blocks toward offset 0 (allocation order preserved);
        returns the number of words reclaimed.  Headers stay valid; raw
        arrays captured before the call are stale aliases."""
        buffer = self._buffer
        cursor = 0
        survivors: list[_Block] = []
        for block in self._blocks:
            if not block.live:
                continue
            if block.offset != cursor:
                src = buffer[block.offset : block.offset + block.words]
                if cursor + block.words > block.offset:  # overlapping slide
                    src = src.copy()
                buffer[cursor : cursor + block.words] = src
                block.offset = cursor
            cursor += block.words
            survivors.append(block)
        reclaimed = self._cursor - cursor
        self._blocks = survivors
        self._cursor = cursor
        return reclaimed

    def close(self) -> None:
        """Release the shared-memory segment (no-op for private arenas)."""
        if self._shm is not None:
            shm, self._shm = self._shm, None
            self._buffer = np.empty(0, dtype=np.int64)
            try:
                shm.close()
            except BufferError:  # pragma: no cover - caller-held view
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def stacked_view(arrays: list[np.ndarray]) -> np.ndarray | None:
    """A zero-copy ``np.stack`` equivalent for equally-strided sibling views.

    When every array in ``arrays`` is a same-shape/same-stride view into
    one base buffer and consecutive members sit a constant byte offset
    apart (adjacent arena blocks, rows of one stacked ciphertext, slices
    of a staged batch), the stack *already exists* in memory: this returns
    an ``as_strided`` view with one extra leading axis.  Returns ``None``
    when the arrays do not alias one buffer that way -- callers fall back
    to a materializing ``np.stack``.
    """
    if len(arrays) < 2:
        return None
    first = arrays[0]
    if not isinstance(first, np.ndarray) or first.dtype != np.int64:
        return None

    def _root(arr: np.ndarray):
        while isinstance(arr.base, np.ndarray):
            arr = arr.base
        return arr.base if arr.base is not None else arr

    root = _root(first)
    addresses = []
    for arr in arrays:
        if (
            not isinstance(arr, np.ndarray)
            or arr.shape != first.shape
            or arr.strides != first.strides
            or arr.dtype != first.dtype
            or _root(arr) is not root
        ):
            return None
        addresses.append(arr.__array_interface__["data"][0])
    step = addresses[1] - addresses[0]
    if any(b - a != step for a, b in zip(addresses, addresses[1:])):
        return None
    return np.lib.stride_tricks.as_strided(
        first,
        shape=(len(arrays), *first.shape),
        strides=(step, *first.strides),
    )
