"""repro: reproduction of 'Privacy-Preserving Neural Network Inference
Framework via Homomorphic Encryption and SGX' (ICDCS 2021).

Subpackages:
    repro.he    -- from-scratch FV/BFV homomorphic encryption
    repro.sgx   -- SGX enclave simulator (EPC, ECALLs, attestation)
    repro.nn    -- CNN engine (layers, training, synthetic MNIST)
    repro.core  -- the paper's inference pipelines (plaintext, CryptoNets, hybrid)
    repro.bench -- measurement harness (mean / STD / 96% CI tables)
"""

__version__ = "1.0.0"
