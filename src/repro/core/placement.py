"""Pooling placement policy: SGXDiv vs SGXPool (paper Section VI-D, Fig. 6).

Two ways to mean-pool a ``(B, C, H, W)`` encrypted feature map with an
enclave at hand:

* **SGXPool**: ship the *whole* map into the enclave; decrypt H*W values,
  pool and divide inside.  Enclave work is constant in the window size.
* **SGXDiv**: sum each window homomorphically outside (``EncryptedSum``,
  cheap C + C adds), then ship only the ``(H/k) * (W/k)`` sums inside for
  the division.  Enclave work shrinks quadratically with the window.

The paper finds the crossover at window size 3: below it, SGXPool wins
(window sums barely shrink the map, and the per-value decrypt cost inside
SGX dominates); at 3 and above, SGXDiv wins.  ``PoolingPlacementPolicy``
encodes that rule and can also *measure* the decision at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import PipelineError
from repro.he.context import Ciphertext
from repro.he.evaluator import Evaluator
from repro.sgx.clock import ClockWindow
from repro.sgx.enclave import EnclaveHandle


class PoolStrategy(Enum):
    """Where an encrypted mean-pool executes."""

    SGX_POOL = "sgx_pool"  # everything inside the enclave
    SGX_DIV = "sgx_div"  # homomorphic window sum outside + division inside


@dataclass(frozen=True)
class PoolingPlacementPolicy:
    """Chooses where encrypted mean-pooling should run.

    Attributes:
        crossover_window: smallest window size for which SGXDiv is selected
            (the paper measures 3 on its hardware).
    """

    crossover_window: int = 3

    def choose(self, window: int) -> PoolStrategy:
        if window < 1:
            raise PipelineError("window must be >= 1")
        return PoolStrategy.SGX_DIV if window >= self.crossover_window else PoolStrategy.SGX_POOL


def he_window_sum(evaluator: Evaluator, ct: Ciphertext, window: int) -> Ciphertext:
    """``EncryptedSum``: the homomorphic part of SGXDiv."""
    from repro.core.heops import he_scaled_mean_pool

    return he_scaled_mean_pool(evaluator, ct, window)


def pool_with_strategy(
    evaluator: Evaluator,
    enclave: EnclaveHandle,
    ct: Ciphertext,
    window: int,
    strategy: PoolStrategy,
) -> Ciphertext:
    """Execute encrypted mean-pooling under the given placement."""
    if strategy is PoolStrategy.SGX_POOL:
        return enclave.ecall("mean_pool", ct, window)
    summed = he_window_sum(evaluator, ct, window)
    return enclave.ecall("divide", summed, window * window)


@dataclass
class MeasuredChoice:
    """Outcome of an empirical placement probe."""

    window: int
    sgx_pool_s: float
    sgx_div_s: float

    @property
    def best(self) -> PoolStrategy:
        return (
            PoolStrategy.SGX_DIV if self.sgx_div_s <= self.sgx_pool_s else PoolStrategy.SGX_POOL
        )


def measure_placement(
    evaluator: Evaluator,
    enclave: EnclaveHandle,
    ct: Ciphertext,
    window: int,
) -> MeasuredChoice:
    """Time both strategies on a live feature map and report the winner.

    Uses the platform's simulated clock, so the decision reflects modeled
    SGX costs (marshalling of the full map vs the shrunken sums), exactly
    the trade Fig. 6 plots.
    """
    clock = enclave.platform.clock
    probe = ClockWindow(clock)
    pool_with_strategy(evaluator, enclave, ct, window, PoolStrategy.SGX_POOL)
    sgx_pool_s = probe.elapsed_s
    probe.restart()
    pool_with_strategy(evaluator, enclave, ct, window, PoolStrategy.SGX_DIV)
    sgx_div_s = probe.elapsed_s
    return MeasuredChoice(window=window, sgx_pool_s=sgx_pool_s, sgx_div_s=sgx_div_s)
