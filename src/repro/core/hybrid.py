"""The paper's contribution: hybrid HE + SGX inference (``EncryptSGX``).

Linear layers (conv, FC) are evaluated homomorphically *outside* the enclave
with the model weights in the untrusted world (Section IV-C); the
non-polynomial activation and pooling are decrypted, computed exactly, and
re-encrypted *inside* the enclave (Section IV-D).  Consequences reproduced
here:

* no square approximation -> accuracy identical to the plaintext quantized
  model (verified bit-exactly by the tests);
* no relinearization keys needed -- the in-enclave refresh resets noise;
* the enclave also plays key authority, so the whole flow runs without a
  trusted third party (Section IV-A; the constructor performs the full
  attested key delivery to the simulated user).

Three execution modes mirror the paper's Fig. 8 schemes:

* ``batched``  -- ``EncryptSGX``: one crossing per feature-map batch;
* ``per_pixel`` -- ``EncryptSGX (single)``: one crossing per feature value,
  the negative control whose transition costs dwarf everything;
* ``fake``     -- ``EncryptFakeSGX``: identical code outside any enclave.
"""

from __future__ import annotations

import numpy as np

from repro.core import heops
from repro.core.enclave_service import InferenceEnclave
from repro.graph import executor as graph_executor
from repro.core.keyflow import establish_user_keys
from repro.core.results import InferenceResult, stages_from_trace
from repro.errors import PipelineError
from repro.faults import EnclaveSupervisor, run_with_kernel_degradation
from repro.he import kernels
from repro.he.context import Ciphertext, Context
from repro.he.decryptor import Decryptor
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.he.evaluator import Evaluator, OperationCounter
from repro.he.params import EncryptionParams
from repro.nn.quantize import QuantizedCNN
from repro.sgx.attestation import AttestationVerificationService, QuotingService
from repro.sgx.enclave import SgxPlatform

MODES = ("batched", "per_pixel", "fake")

_SCHEME_NAMES = {
    "batched": "EncryptSGX",
    "per_pixel": "EncryptSGX(single)",
    "fake": "EncryptFakeSGX",
}


class HybridPipeline:
    """Hybrid privacy-preserving inference on one simulated edge server.

    Args:
        quantized: integer model with ``activation="sigmoid"`` (or any
            activation in :data:`repro.core.enclave_service.ACTIVATIONS`).
        params: FV parameters; only one linear layer of noise headroom is
            needed thanks to the enclave refresh.
        platform: the simulated SGX machine (fresh one by default).
        mode: ``batched`` | ``per_pixel`` | ``fake`` (see module docstring).
        seed: reproducible randomness.
    """

    def __init__(
        self,
        quantized: QuantizedCNN,
        params: EncryptionParams,
        platform: SgxPlatform | None = None,
        mode: str = "batched",
        seed: int | None = None,
    ) -> None:
        if mode not in MODES:
            raise PipelineError(f"mode must be one of {MODES}, got {mode!r}")
        if quantized.activation == "square":
            raise PipelineError(
                "the hybrid pipeline expects an exact-activation model "
                "(quantize a paper_cnn, not a cryptonets_cnn)"
            )
        if mode == "per_pixel" and (
            quantized.activation != "sigmoid" or quantized.pool != "mean"
        ):
            raise PipelineError(
                "the per-pixel control reproduces the paper's sigmoid + "
                "mean-pool configuration only"
            )
        if not quantized.fits_plain_modulus(params.plain_modulus):
            raise PipelineError(
                f"plain_modulus {params.plain_modulus} cannot hold the conv "
                f"intermediates (need >= {quantized.required_plain_modulus()})"
            )
        self.quantized = quantized
        self.params = params
        self.mode = mode
        self.scheme = _SCHEME_NAMES[mode]
        self.activation = quantized.activation
        self.platform = platform if platform is not None else SgxPlatform()
        self.clock = self.platform.clock
        self.tracer = self.platform.tracer
        self.context = Context(params)

        # Load the trusted service under crash supervision; "fake" runs the
        # same code (and the same recovery path) with no enclave.
        self.enclave = EnclaveSupervisor(
            self.platform, InferenceEnclave, params, seed, trusted=(mode != "fake")
        )
        self.enclave.ecall("generate_keys")

        # Full Fig. 2 key delivery: the simulated user attests the enclave
        # and receives the key pair over the secure channel.
        self.quoting = QuotingService(self.platform)
        self.verifier = AttestationVerificationService()
        self.verifier.register_platform(self.quoting)
        entropy = np.random.default_rng(seed).bytes(32)
        user_keys = establish_user_keys(
            self.platform, self.enclave, self.quoting, self.verifier, params, entropy
        )

        self.counter = OperationCounter()
        self.evaluator = Evaluator(self.context, self.counter)
        self.encoder = ScalarEncoder(self.context)
        self.encryptor = Encryptor(
            self.context, user_keys.public, np.random.default_rng(seed)
        )
        self.decryptor = Decryptor(self.context, user_keys.secret)

        # Weights are encoded once and stay outside the enclave (Section IV-B).
        encoded = heops.encode_model_weights(self.evaluator, self.encoder, quantized)
        self.conv_weights = encoded.conv
        self.dense_weights = encoded.dense

    # ------------------------------------------------------------------
    def encrypt_images(self, images: np.ndarray) -> Ciphertext:
        pixels = self.quantized.quantize_images(images)
        return self.encryptor.encrypt(self.encoder.encode(pixels))

    def _activation_pool(self, conv: Ciphertext) -> Ciphertext:
        scale = self.quantized.conv_output_scale
        out_scale = self.quantized.act_scale
        window = self.quantized.pool_window
        if self.mode != "per_pixel":
            return self.enclave.ecall(
                "activation_pool",
                conv,
                scale,
                out_scale,
                window,
                self.activation,
                self.quantized.pool,
            )
        # EncryptSGX (single): every feature value crosses the boundary alone.
        b, c, h, w = conv.batch_shape
        pieces = np.empty((b, c, h, w), dtype=object)
        for bi in range(b):
            for ci in range(c):
                for i in range(h):
                    for j in range(w):
                        one = conv[bi : bi + 1, ci : ci + 1, i : i + 1, j : j + 1]
                        pieces[bi, ci, i, j] = self.enclave.ecall(
                            "sigmoid", one, scale, out_scale
                        )
        stacked = np.stack(
            [
                [
                    [[pieces[bi, ci, i, j].data[0, 0, 0, 0] for j in range(w)] for i in range(h)]
                    for ci in range(c)
                ]
                for bi in range(b)
            ]
        )
        activated = Ciphertext(self.context, stacked, is_ntt=True)
        return self.enclave.ecall("mean_pool", activated, self.quantized.pool_window)

    def _stage(self, name: str):
        return self.tracer.stage(
            name, counter=self.counter, side_channel=self.enclave.side_channel
        )

    def infer(self, images: np.ndarray) -> InferenceResult:
        """One inference; degrades FUSED -> REFERENCE kernels and retries
        once if the runtime equivalence guard trips (identical logits)."""
        return run_with_kernel_degradation(
            self.tracer, self.scheme, lambda: self._infer_once(images)
        )

    def _infer_once(self, images: np.ndarray) -> InferenceResult:
        graph, report = graph_executor.compiled_for(self, "hybrid", mode=self.mode)
        self.graph_report = report
        with self.tracer.span(
            self.scheme,
            kind="pipeline",
            counter=self.counter,
            side_channel=self.enclave.side_channel,
            mode=self.mode,
            kernel_mode=kernels.active().mode_name,
            graph_opt=report.label,
            batch=int(images.shape[0]),
        ) as trace:
            logits, budget, logits_ct = graph_executor.run(self, graph, images)

        return InferenceResult(
            logits=logits,
            stages=stages_from_trace(trace),
            scheme=self.scheme,
            noise_budget_bits=budget,
            op_counts=dict(self.counter.counts),
            enclave_crossings=trace.crossings,
            trace=trace,
            logits_ct=logits_ct,
        )
