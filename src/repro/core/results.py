"""Result and timing records produced by the inference pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import Span


@dataclass
class StageTiming:
    """Time spent in one pipeline stage.

    ``real_s`` is measured wall-clock compute; ``overhead_s`` is the modeled
    SGX cost (transitions, marshalling, EPC factor, paging) charged by the
    simulator while the stage ran.
    """

    name: str
    real_s: float
    overhead_s: float = 0.0

    @property
    def elapsed_s(self) -> float:
        return self.real_s + self.overhead_s

    @classmethod
    def from_span(cls, span: Span) -> "StageTiming":
        return cls(span.name, span.real_s, span.overhead_s)


def stages_from_trace(trace: Span) -> list[StageTiming]:
    """Stage timings from a pipeline span's direct ``stage`` children."""
    return [StageTiming.from_span(s) for s in trace.stages()]


@dataclass
class InferenceResult:
    """Outcome of one (batched) privacy-preserving inference.

    Attributes:
        logits: integer scaled logits, shape ``(batch, classes)``.
        stages: per-stage timing breakdown, in execution order.
        scheme: pipeline label ("Encrypted", "EncryptSGX", ...).
        noise_budget_bits: remaining invariant-noise budget of the encrypted
            logits at decryption time (None for plaintext pipelines).
        op_counts: homomorphic operation tallies (C x P, C + C, ...).
        enclave_crossings: number of ECALLs the run needed.
        trace: the run's root span (pipeline -> stage -> ecall), when the
            pipeline traced it; ``stages`` are its direct stage children.
        logits_ct: the encrypted logits prior to decryption (None for
            plaintext pipelines); the differential equivalence harness
            serializes it for byte-level comparisons across optimizer
            levels.
    """

    logits: np.ndarray
    stages: list[StageTiming] = field(default_factory=list)
    scheme: str = ""
    noise_budget_bits: float | None = None
    op_counts: dict[str, int] = field(default_factory=dict)
    enclave_crossings: int = 0
    trace: Span | None = None
    logits_ct: object | None = None

    @property
    def predictions(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    @property
    def total_real_s(self) -> float:
        return sum(s.real_s for s in self.stages)

    @property
    def total_overhead_s(self) -> float:
        return sum(s.overhead_s for s in self.stages)

    @property
    def total_elapsed_s(self) -> float:
        return self.total_real_s + self.total_overhead_s

    def stage(self, name: str) -> StageTiming:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}")

    def describe(self) -> str:
        lines = [f"{self.scheme}: {self.total_elapsed_s:.3f}s simulated"]
        for s in self.stages:
            lines.append(
                f"  {s.name}: {s.elapsed_s:.3f}s"
                f" (real {s.real_s:.3f}s + sgx {s.overhead_s:.3f}s)"
            )
        if self.noise_budget_bits is not None:
            lines.append(f"  final noise budget: {self.noise_budget_bits:.1f} bits")
        return "\n".join(lines)
