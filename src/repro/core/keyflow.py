"""Key distribution flows: TTP baseline (Fig. 1) vs SGX attestation (Fig. 2).

The paper's first contribution claim is replacing the external trusted third
party of HE deployments with the enclave itself.  This module implements
both flows so the benchmarks can compare them and the tests can demonstrate
the TTP's structural weaknesses (full key knowledge, interceptable channel)
against the attested flow's guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import securechannel
from repro.core.enclave_service import InferenceEnclave, unpack_key_pair
from repro.errors import AttestationError
from repro.he.context import Context
from repro.he.keys import KeyGenerator, KeyPair, PublicKey, RelinKeys, SecretKey
from repro.he.params import EncryptionParams
from repro.he.serialize import deserialize_public_key, deserialize_secret_key
from repro.sgx.attestation import AttestationVerificationService, QuotingService
from repro.sgx.enclave import EnclaveHandle, SgxPlatform


@dataclass
class DeliveredKeys:
    """What a user ends up holding after either flow."""

    public: PublicKey
    secret: SecretKey


class TrustedThirdParty:
    """The Fig. 1 baseline: an external PKI-style key authority.

    Structural properties the paper criticizes (Section III-A), made
    explicit here so tests and docs can point at them:

    * the TTP itself knows every user's private key (``knows_secret_of``);
    * keys transit a plain channel an eavesdropper can copy
      (``wiretap_log``);
    * the evaluating party must come back for relinearization keys, adding
      communication rounds (``communication_rounds``).
    """

    def __init__(self, params: EncryptionParams, seed: int | None = None) -> None:
        self.context = Context(params)
        self._keygen = KeyGenerator(self.context, np.random.default_rng(seed))
        self._issued: dict[str, KeyPair] = {}
        self.wiretap_log: list[tuple[str, object]] = []
        self.communication_rounds = 0

    def issue_keys(self, user_id: str) -> DeliveredKeys:
        """Generate and hand out a key pair (plaintext channel!)."""
        pair = self._keygen.generate()
        self._issued[user_id] = pair
        self.communication_rounds += 1
        # An on-path adversary sees exactly what the user receives.
        self.wiretap_log.append((user_id, pair))
        return DeliveredKeys(public=pair.public, secret=pair.secret)

    def issue_relin_keys(self, user_id: str) -> RelinKeys:
        """The extra round HE-only deployments need (Section III-A)."""
        pair = self._issued.get(user_id)
        if pair is None:
            raise AttestationError(f"no keys issued for {user_id!r}")
        self.communication_rounds += 1
        return self._keygen.relin_keys(pair.secret)

    def knows_secret_of(self, user_id: str) -> bool:
        return user_id in self._issued


@dataclass
class UserClient:
    """User-side endpoint of the attested key-delivery flow.

    Args:
        params: FV parameters agreed with the service.
        verifier: attestation verification service the user trusts.
        expected_mrenclave: code identity of the genuine inference enclave.
        entropy: 32+ bytes of client randomness for the DH handshake.
    """

    params: EncryptionParams
    verifier: AttestationVerificationService
    expected_mrenclave: str
    entropy: bytes
    _dh: securechannel.DhKeyPair = field(init=False)

    def __post_init__(self) -> None:
        self._dh = securechannel.DhKeyPair.generate(self.entropy)

    def begin_exchange(self) -> int:
        """Step 1: the DH share the user sends to the edge server."""
        return self._dh.public

    def complete_exchange(self, quote, sealed_message) -> DeliveredKeys:
        """Step 3: verify the quote, check payload binding, decrypt keys.

        Raises:
            AttestationError: wrong enclave code, forged quote, or a payload
                that does not match the attested digest.
        """
        verified = self.verifier.verify(quote, expected_mrenclave=self.expected_mrenclave)
        enclave_share, digest = securechannel.split_user_data(verified.user_data)
        actual_digest = securechannel.payload_digest(
            sealed_message.nonce + sealed_message.ciphertext + sealed_message.tag
        )
        if digest != actual_digest:
            raise AttestationError(
                "delivered payload does not match the attested digest"
            )
        session_key = self._dh.shared_secret(enclave_share)
        payload = securechannel.decrypt_message(session_key, sealed_message)
        public_bytes, secret_bytes = unpack_key_pair(payload)
        context = Context(self.params)
        return DeliveredKeys(
            public=deserialize_public_key(public_bytes, context),
            secret=deserialize_secret_key(secret_bytes, context),
        )


@dataclass
class SgxKeyDistribution:
    """Orchestrates the full Fig. 2 flow on the edge server side."""

    platform: SgxPlatform
    enclave: EnclaveHandle
    quoting: QuotingService

    def serve_exchange(self, user_dh_public: int) -> tuple:
        """Run the enclave key exchange and quote the resulting user_data.

        Returns ``(quote, sealed_message)`` for transmission to the user.
        """
        sealed_message, user_data = self.enclave.ecall("key_exchange", user_dh_public)
        report = self.enclave.create_report(user_data)
        quote = self.quoting.quote(report)
        return quote, sealed_message


def establish_user_keys(
    platform: SgxPlatform,
    enclave: EnclaveHandle,
    quoting: QuotingService,
    verifier: AttestationVerificationService,
    params: EncryptionParams,
    entropy: bytes,
) -> DeliveredKeys:
    """Convenience end-to-end helper: one user obtains keys via attestation."""
    user = UserClient(
        params=params,
        verifier=verifier,
        expected_mrenclave=enclave.measurement.mrenclave,
        entropy=entropy,
    )
    service = SgxKeyDistribution(platform=platform, enclave=enclave, quoting=quoting)
    quote, sealed = service.serve_exchange(user.begin_exchange())
    return user.complete_exchange(quote, sealed)


# Re-export for API convenience: the enclave class is the other half of this flow.
__all__ = [
    "DeliveredKeys",
    "InferenceEnclave",
    "SgxKeyDistribution",
    "TrustedThirdParty",
    "UserClient",
    "establish_user_keys",
]
