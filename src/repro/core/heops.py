"""Homomorphic CNN building blocks shared by both encrypted pipelines.

The paper's framework keeps every *linear* layer under HE outside the
enclave (Section IV-C): convolution and the fully connected layer decompose
into ciphertext-plaintext multiplications (``C x P``) and ciphertext
additions (``C + C``).  These helpers operate on *batched* ciphertexts whose
batch axes mirror the tensor layout ``(B, C, H, W)``, one ciphertext per
pixel, exactly the paper's non-SIMD encoding.

Weights are pre-encoded once (Section IV-B / Fig. 3) via
:func:`encode_weights`; the returned operand table is reused across every
inference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PipelineError
from repro.he.context import Ciphertext
from repro.he.encoders import ScalarEncoder
from repro.he.evaluator import Evaluator, PlainOperand


class EncodedConvWeights:
    """NTT-precomputed conv weights + integer bias.

    Attributes:
        operands: object array ``(F, C, k, k)`` of :class:`PlainOperand`.
        bias: int64 array ``(F,)`` at conv-output scale.
    """

    def __init__(self, operands: np.ndarray, bias: np.ndarray, stride: int) -> None:
        self.operands = operands
        self.bias = bias
        self.stride = stride

    @property
    def out_channels(self) -> int:
        return self.operands.shape[0]

    @property
    def kernel_size(self) -> int:
        return self.operands.shape[-1]


class EncodedDenseWeights:
    """NTT-precomputed FC weights + integer bias.

    Attributes:
        operands: list of ``(D,)``-batched :class:`PlainOperand`, one per
            output class (row-major over the flattened input).
        bias: int64 array ``(O,)`` at logit scale.
    """

    def __init__(self, operands: list[PlainOperand], bias: np.ndarray) -> None:
        self.operands = operands
        self.bias = bias

    @property
    def out_features(self) -> int:
        return len(self.operands)


class EncodedModel:
    """A quantized CNN's full NTT-precomputed operand set.

    One object per provisioned model: the conv and dense operand tables
    every pipeline (hybrid, SIMD, CryptoNets, the serving scheduler) reuses
    across inferences.
    """

    def __init__(self, conv: EncodedConvWeights, dense: EncodedDenseWeights) -> None:
        self.conv = conv
        self.dense = dense


def encode_model_weights(
    evaluator: Evaluator, encoder: ScalarEncoder, quantized
) -> EncodedModel:
    """Encode a quantized model's conv + FC weights once (Section IV-B).

    ``quantized`` is any object with ``conv_weight`` / ``conv_bias`` /
    ``stride`` / ``dense_weight`` / ``dense_bias`` (a
    :class:`~repro.nn.quantize.QuantizedCNN`).
    """
    conv = encode_conv_weights(
        evaluator, encoder, quantized.conv_weight, quantized.conv_bias,
        quantized.stride,
    )
    dense = encode_dense_weights(
        evaluator, encoder, quantized.dense_weight, quantized.dense_bias
    )
    return EncodedModel(conv, dense)


def encode_conv_weights(
    evaluator: Evaluator,
    encoder: ScalarEncoder,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int = 1,
) -> EncodedConvWeights:
    """Encode integer conv weights into reusable NTT plaintext operands."""
    f, c, kh, kw = weight.shape
    operands = np.empty((f, c, kh, kw), dtype=object)
    for fi in range(f):
        for ci in range(c):
            for i in range(kh):
                for j in range(kw):
                    operands[fi, ci, i, j] = evaluator.transform_plain(
                        encoder.encode(int(weight[fi, ci, i, j]))
                    )
    return EncodedConvWeights(operands, np.asarray(bias, dtype=np.int64), stride)


def encode_dense_weights(
    evaluator: Evaluator,
    encoder: ScalarEncoder,
    weight: np.ndarray,
    bias: np.ndarray,
) -> EncodedDenseWeights:
    """Encode integer FC weights, one batched operand per output class."""
    d, o = weight.shape
    operands = [
        evaluator.transform_plain(encoder.encode(weight[:, oi])) for oi in range(o)
    ]
    return EncodedDenseWeights(operands, np.asarray(bias, dtype=np.int64))


def he_conv2d(
    evaluator: Evaluator,
    encoder: ScalarEncoder,
    ct: Ciphertext,
    weights: EncodedConvWeights,
) -> Ciphertext:
    """Homomorphic convolution over a ``(B, C, H, W)`` ciphertext batch.

    For each kernel tap the input window slice (a strided view over the
    batch axes) is multiplied by the encoded scalar weight and accumulated,
    i.e. ``k*k*C`` C x P and C + C operations per output map -- the exact op
    structure Fig. 4 measures.
    """
    if len(ct.batch_shape) != 4:
        raise PipelineError(
            f"he_conv2d expects a (B, C, H, W) ciphertext batch, got {ct.batch_shape}"
        )
    b, c, h, w = ct.batch_shape
    if c != weights.operands.shape[1]:
        raise PipelineError(
            f"ciphertext has {c} channels, weights expect {weights.operands.shape[1]}"
        )
    k = weights.kernel_size
    s = weights.stride
    oh = (h - k) // s + 1
    ow = (w - k) // s + 1
    per_channel: list[Ciphertext] = []
    for fi in range(weights.out_channels):
        acc: Ciphertext | None = None
        for ci in range(c):
            for i in range(k):
                for j in range(k):
                    window = ct[:, ci, i : i + oh * s : s, j : j + ow * s : s]
                    term = evaluator.multiply_plain(window, weights.operands[fi, ci, i, j])
                    acc = term if acc is None else evaluator.add(acc, term)
        bias_plain = encoder.encode(
            np.full((b, oh, ow), int(weights.bias[fi]), dtype=np.int64)
        )
        per_channel.append(evaluator.add_plain(acc, bias_plain))
    data = np.stack([m.data for m in per_channel], axis=1)
    return Ciphertext(ct.context, data, is_ntt=per_channel[0].is_ntt)


def he_square(evaluator: Evaluator, ct: Ciphertext) -> Ciphertext:
    """CryptoNets activation: homomorphic elementwise square (size 2 -> 3)."""
    return evaluator.square(ct)


def he_scaled_mean_pool(
    evaluator: Evaluator, ct: Ciphertext, window: int
) -> Ciphertext:
    """Division-free pooling: homomorphic window sum (``EncryptedSum``)."""
    if len(ct.batch_shape) != 4:
        raise PipelineError("he_scaled_mean_pool expects a (B, C, H, W) batch")
    _, _, h, w = ct.batch_shape
    if h % window or w % window:
        raise PipelineError(f"feature map {h}x{w} not divisible by window {window}")
    acc: Ciphertext | None = None
    for i in range(window):
        for j in range(window):
            piece = ct[:, :, i::window, j::window]
            acc = piece if acc is None else evaluator.add(acc, piece)
    return acc


def he_dense(
    evaluator: Evaluator,
    encoder: ScalarEncoder,
    ct: Ciphertext,
    weights: EncodedDenseWeights,
) -> Ciphertext:
    """Homomorphic fully connected layer over a flattened ciphertext batch.

    Produces a ``(B, O)`` ciphertext of scaled logits: for every output
    class the flattened input batch is multiplied slot-wise by that class's
    weight vector and folded with a batched C + C reduction.
    """
    b = ct.batch_shape[0]
    flat = ct.reshape(b, -1)
    d = flat.batch_shape[1]
    outputs: list[Ciphertext] = []
    for oi, operand in enumerate(weights.operands):
        if operand.batch_shape != (d,):
            raise PipelineError(
                f"dense operand {oi} covers {operand.batch_shape} inputs, "
                f"ciphertext provides {d}"
            )
        products = evaluator.multiply_plain(flat, operand)
        summed = evaluator.sum_batch(products, axis=1)
        bias_plain = encoder.encode(np.full((b,), int(weights.bias[oi]), dtype=np.int64))
        outputs.append(evaluator.add_plain(summed, bias_plain))
    data = np.stack([o.data for o in outputs], axis=1)
    return Ciphertext(ct.context, data, is_ntt=outputs[0].is_ntt)
