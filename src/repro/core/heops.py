"""Homomorphic CNN building blocks shared by both encrypted pipelines.

The paper's framework keeps every *linear* layer under HE outside the
enclave (Section IV-C): convolution and the fully connected layer decompose
into ciphertext-plaintext multiplications (``C x P``) and ciphertext
additions (``C + C``).  These helpers operate on *batched* ciphertexts whose
batch axes mirror the tensor layout ``(B, C, H, W)``, one ciphertext per
pixel, exactly the paper's non-SIMD encoding.

Weights are pre-encoded once (Section IV-B / Fig. 3) via
:func:`encode_weights`; the returned operand table is reused across every
inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PipelineError
from repro.he import kernels, parallel
from repro.he.context import Ciphertext
from repro.he.encoders import ScalarEncoder
from repro.he.evaluator import Evaluator, PlainOperand

#: Elementwise cap on the gathered tap-window stack (~128 MB of int64).
_TAP_CHUNK_ELEMS = 1 << 24

_INT64_MAX = (1 << 63) - 1


@dataclass(frozen=True)
class LayerPlan:
    """Graph-optimizer rewrites for one fused contraction.

    Produced by ``repro.graph`` passes; every rewrite is exact, so a layer
    executed with a plan is bit-identical to one executed without it:

    Attributes:
        keep_taps: surviving tap indices (conv: row-major ``(C, i, j)``
            positions; dense: flattened input dims).  Dropped taps have a
            zero weight in every filter/class, so their contribution to the
            modular accumulator is exactly zero.
        fold_bias: add the encoded bias residues into the still-unreduced
            int64 accumulator instead of a separate ``add_plain_operand``
            pass; only honored on the scalar fast path, whose overflow
            bound is checked with one extra canonical-residue term of slack.

    The plan is advisory: paths that cannot apply a rewrite exactly (the
    pooled multicore dispatch, generic NTT operands, the non-fused
    reference loop) ignore it and produce the same bytes the slow way.
    Recorded op tallies always reflect the *reference* op structure (full
    tap counts), keeping tallies comparable across optimizer levels.
    """

    keep_taps: tuple[int, ...] | None = None
    fold_bias: bool = False


def _recover_slot_constants(ntt_data: np.ndarray, prime_list: list[int]) -> np.ndarray | None:
    """Recover the integer scalars behind slot-constant NTT operands.

    ``ScalarEncoder`` encodes a weight ``w`` as the constant polynomial
    ``[w]_t``, whose NTT evaluation is the same residue in every slot; a
    ``ct_plain_mul`` by such an operand is therefore multiplication by one
    integer.  Given stacked operand data ``(..., k, n)`` this returns the
    ``(...,)`` int64 values (centered at the first prime, verified consistent
    across all primes), or ``None`` if any operand is not slot-constant --
    the fused layers then keep the generic modular tap path.
    """
    if not (ntt_data == ntt_data[..., :1]).all():
        return None
    residues = ntt_data[..., 0]  # (..., k)
    p0 = prime_list[0]
    values = np.where(
        residues[..., 0] <= p0 // 2, residues[..., 0], residues[..., 0] - p0
    ).astype(np.int64)
    for i, p in enumerate(prime_list):
        if not (values % p == residues[..., i]).all():
            return None
    return values


def _scalar_tap_bound_ok(
    values: np.ndarray, terms: int, p_max: int, slack: int = 0
) -> bool:
    """True when ``sum_{terms}(w * x)`` with ``|w| <= max|values|`` and
    ``0 <= x < p_max`` cannot overflow int64 -- the fused layers' deferred
    single-reduction contract.  ``slack`` budgets extra weight-1 residue
    terms (the graph optimizer's folded bias adds one)."""
    if values.size == 0:
        return False
    w_max = int(np.abs(values).max())
    return (terms * w_max + slack) * (p_max - 1) <= _INT64_MAX


class EncodedConvWeights:
    """NTT-precomputed conv weights + integer bias.

    Attributes:
        operands: object array ``(F, C, k, k)`` of :class:`PlainOperand`.
        bias: int64 array ``(F,)`` at conv-output scale.
        tap_stack: int64 array ``(F, T, k_rns, n)`` stacking every tap
            operand's NTT data in reference-loop order (``T = C * k * k``,
            row-major over ``(C, i, j)``) -- the fused kernel's operand.
        bias_operand: broadcastable ``(F, 1, 1)``-batched ``Delta * bias``
            :class:`PlainOperand` precomputed at encode time (``None`` when
            constructed without an evaluator; the fused bias path then falls
            back to per-call encoding).
    """

    def __init__(
        self,
        operands: np.ndarray,
        bias: np.ndarray,
        stride: int,
        bias_operand: PlainOperand | None = None,
    ) -> None:
        self.operands = operands
        self.bias = bias
        self.stride = stride
        self.bias_operand = bias_operand
        f = operands.shape[0]
        self.tap_stack = np.stack(
            [np.stack([op.ntt_data for op in operands[fi].ravel()]) for fi in range(f)]
        )
        # (F, T) signed integer weights behind the slot-constant operands;
        # None when any tap is not a scalar encoding.
        self.weight_taps = _recover_slot_constants(
            self.tap_stack, [int(p) for p in operands.flat[0].context.ring.primes]
        )

    @property
    def out_channels(self) -> int:
        return self.operands.shape[0]

    @property
    def kernel_size(self) -> int:
        return self.operands.shape[-1]


class EncodedDenseWeights:
    """NTT-precomputed FC weights + integer bias.

    Attributes:
        operands: list of ``(D,)``-batched :class:`PlainOperand`, one per
            output class (row-major over the flattened input).
        bias: int64 array ``(O,)`` at logit scale.
        class_stack: int64 array ``(O, D, k_rns, n)`` stacking every class
            operand -- the fused kernel computes all classes in one pass.
        bias_operand: ``(O,)``-batched ``Delta * bias`` operand precomputed
            at encode time (``None`` without an evaluator).
    """

    def __init__(
        self,
        operands: list[PlainOperand],
        bias: np.ndarray,
        bias_operand: PlainOperand | None = None,
    ) -> None:
        self.operands = operands
        self.bias = bias
        self.bias_operand = bias_operand
        self.class_stack = np.stack([op.ntt_data for op in operands])
        # (O, D) signed integer weights behind the slot-constant operands.
        self.weight_matrix = _recover_slot_constants(
            self.class_stack, [int(p) for p in operands[0].context.ring.primes]
        )

    @property
    def out_features(self) -> int:
        return len(self.operands)


class EncodedModel:
    """A quantized CNN's full NTT-precomputed operand set.

    One object per provisioned model: the conv and dense operand tables
    every pipeline (hybrid, SIMD, CryptoNets, the serving scheduler) reuses
    across inferences.
    """

    def __init__(self, conv: EncodedConvWeights, dense: EncodedDenseWeights) -> None:
        self.conv = conv
        self.dense = dense


def encode_model_weights(
    evaluator: Evaluator, encoder: ScalarEncoder, quantized
) -> EncodedModel:
    """Encode a quantized model's conv + FC weights once (Section IV-B).

    ``quantized`` is any object with ``conv_weight`` / ``conv_bias`` /
    ``stride`` / ``dense_weight`` / ``dense_bias`` (a
    :class:`~repro.nn.quantize.QuantizedCNN`).
    """
    conv = encode_conv_weights(
        evaluator, encoder, quantized.conv_weight, quantized.conv_bias,
        quantized.stride,
    )
    dense = encode_dense_weights(
        evaluator, encoder, quantized.dense_weight, quantized.dense_bias
    )
    return EncodedModel(conv, dense)


def encode_conv_weights(
    evaluator: Evaluator,
    encoder: ScalarEncoder,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int = 1,
) -> EncodedConvWeights:
    """Encode integer conv weights into reusable NTT plaintext operands."""
    f, c, kh, kw = weight.shape
    operands = np.empty((f, c, kh, kw), dtype=object)
    for fi in range(f):
        for ci in range(c):
            for i in range(kh):
                for j in range(kw):
                    operands[fi, ci, i, j] = evaluator.transform_plain(
                        encoder.encode(int(weight[fi, ci, i, j]))
                    )
    bias = np.asarray(bias, dtype=np.int64)
    # Delta-scaled bias, encoded once with a (F, 1, 1) batch shape that
    # broadcasts over any (B, F, OH, OW) conv output -- no per-inference
    # np.full(...) re-encoding.
    bias_operand = evaluator.transform_plain_delta(
        encoder.encode(bias.reshape(f, 1, 1))
    )
    return EncodedConvWeights(operands, bias, stride, bias_operand=bias_operand)


def encode_dense_weights(
    evaluator: Evaluator,
    encoder: ScalarEncoder,
    weight: np.ndarray,
    bias: np.ndarray,
) -> EncodedDenseWeights:
    """Encode integer FC weights, one batched operand per output class."""
    d, o = weight.shape
    operands = [
        evaluator.transform_plain(encoder.encode(weight[:, oi])) for oi in range(o)
    ]
    bias = np.asarray(bias, dtype=np.int64)
    bias_operand = evaluator.transform_plain_delta(encoder.encode(bias))
    return EncodedDenseWeights(operands, bias, bias_operand=bias_operand)


def he_conv2d(
    evaluator: Evaluator,
    encoder: ScalarEncoder,
    ct: Ciphertext,
    weights: EncodedConvWeights,
    plan: LayerPlan | None = None,
) -> Ciphertext:
    """Homomorphic convolution over a ``(B, C, H, W)`` ciphertext batch.

    For each kernel tap the input window slice (a strided view over the
    batch axes) is multiplied by the encoded scalar weight and accumulated,
    i.e. ``k*k*C`` C x P and C + C operations per output map -- the exact op
    structure Fig. 4 measures.  ``plan`` carries graph-optimizer rewrites
    (see :class:`LayerPlan`); honored on the fused scalar path, ignored
    (bit-identically) elsewhere.
    """
    if len(ct.batch_shape) != 4:
        raise PipelineError(
            f"he_conv2d expects a (B, C, H, W) ciphertext batch, got {ct.batch_shape}"
        )
    b, c, h, w = ct.batch_shape
    if c != weights.operands.shape[1]:
        raise PipelineError(
            f"ciphertext has {c} channels, weights expect {weights.operands.shape[1]}"
        )
    k = weights.kernel_size
    s = weights.stride
    oh = (h - k) // s + 1
    ow = (w - k) // s + 1
    if kernels.active().fused_layers and weights.bias_operand is not None:
        return _he_conv2d_fused(evaluator, ct, weights, oh, ow, plan=plan)
    per_channel: list[Ciphertext] = []
    for fi in range(weights.out_channels):
        acc: Ciphertext | None = None
        for ci in range(c):
            for i in range(k):
                for j in range(k):
                    window = ct[:, ci, i : i + oh * s : s, j : j + ow * s : s]
                    term = evaluator.multiply_plain(window, weights.operands[fi, ci, i, j])
                    acc = term if acc is None else evaluator.add(acc, term)
        bias_plain = encoder.encode(
            np.full((b, oh, ow), int(weights.bias[fi]), dtype=np.int64)
        )
        per_channel.append(evaluator.add_plain(acc, bias_plain))
    data = np.stack([m.data for m in per_channel], axis=1)
    return Ciphertext(ct.context, data, is_ntt=per_channel[0].is_ntt)


def _he_conv2d_fused(
    evaluator: Evaluator,
    ct: Ciphertext,
    weights: EncodedConvWeights,
    oh: int,
    ow: int,
    plan: LayerPlan | None = None,
) -> Ciphertext:
    """Tap-batched convolution: every ``F * C * k * k`` tap window stacked
    along one batch axis, each output map one fused multiply + deferred
    single-reduction sum.

    When every tap operand is a slot-constant scalar encoding (the normal
    quantized-CNN case) the whole tap sum is one signed int64 matmul over
    the raw weights -- ``sum |w| * p`` is bounds-checked against int64 --
    followed by a single mod-p pass.  Otherwise the generic modular path
    multiplies the stacked NTT operands with per-chunk reductions.  Both are
    bit-identical to the per-tap reference loop (mod-p sums are associative
    and every partial stays exact); the window gather is chunked so the
    stacked intermediate is memory-bounded at production scale.  The
    recorded op tallies match the reference loop exactly.
    """
    ring = ct.context.ring
    b, c, h, w = ct.batch_shape
    k = weights.kernel_size
    s = weights.stride
    ct = ct.to_ntt()
    data = ct.data  # (B, C, H, W, size, k_rns, n)
    taps = weights.tap_stack  # (F, T, k_rns, n)
    f, t = taps.shape[:2]
    tail = data.shape[-3:]
    tap_index = [
        (ci, i, j) for ci in range(c) for i in range(k) for j in range(k)
    ]
    slice_elems = b * oh * ow * int(np.prod(tail))
    chunk = max(1, _TAP_CHUNK_ELEMS // max(1, slice_elems))
    p_max = int(ring.primes.max())
    wtaps = weights.weight_taps
    keep = (
        list(plan.keep_taps)
        if plan is not None and plan.keep_taps is not None
        else None
    )
    fold = plan is not None and plan.fold_bias and weights.bias_operand is not None
    eff_wtaps = wtaps[:, keep] if (wtaps is not None and keep is not None) else wtaps
    t_eff = len(keep) if keep is not None else t
    scalar_full = wtaps is not None and _scalar_tap_bound_ok(wtaps, t, p_max)
    scalar_path = eff_wtaps is not None and _scalar_tap_bound_ok(
        eff_wtaps, t_eff, p_max, slack=1 if fold else 0
    )
    if scalar_full:
        # Multicore path: the scalar contraction's work units (batch rows,
        # or conv output rows for a packed B == 1 flush) dispatch to the
        # shared-memory pool; byte-identical to the in-process loop below
        # (exact int64 adds, same chunk order per element).  None means no
        # pool (workers <= 1) or nothing to split -- fall through.
        pooled = parallel.dispatch_conv(
            data,
            wtaps,
            k=k,
            s=s,
            oh=oh,
            ow=ow,
            primes=[int(p) for p in ring.primes],
            chunk=chunk,
        )
        if pooled is not None:
            if evaluator.counter is not None:
                lanes = b * oh * ow
                evaluator.counter.record("ct_plain_mul", f * t * lanes)
                if t > 1:
                    evaluator.counter.record("ct_add", f * (t - 1) * lanes)
            out = Ciphertext(ct.context, pooled, is_ntt=True)
            return evaluator.add_plain_operand(out, weights.bias_operand)
    # Plan rewrites apply only to the in-process scalar contraction: a
    # zero-weight tap contributes exactly zero, so skipping it leaves every
    # modular sum unchanged, and the folded bias lands in the accumulator
    # before the single reduction pass.
    run_index = [tap_index[x] for x in keep] if (scalar_path and keep is not None) else tap_index
    run_w = eff_wtaps if scalar_path else wtaps
    t_run = len(run_index)
    acc = np.zeros((f, b, oh, ow, *tail), dtype=np.int64)
    for start in range(0, t_run, chunk):
        block = run_index[start : start + chunk]
        win = np.empty((len(block), b, oh, ow, *tail), dtype=np.int64)
        for off, (ci, i, j) in enumerate(block):
            win[off] = data[:, ci, i : i + oh * s : s, j : j + ow * s : s]
        if scalar_path:
            # Signed MAC over the raw integer weights: the full tap sum
            # stays below int64 by the bound check, so no intermediate
            # reductions at all -- one matmul per chunk.
            acc += (
                run_w[:, start : start + chunk] @ win.reshape(len(block), -1)
            ).reshape(acc.shape)
        else:
            # (F, Tc, B, OH, OW, size, k_rns, n) product, reduced over taps.
            acc += ring.pointwise_mul_sum(
                win[None],
                taps[:, start : start + chunk, None, None, None, None, :, :],
                axis=1,
            )
    folded = False
    if scalar_path:
        if fold:
            acc[..., 0, :, :] += weights.bias_operand.ntt_data.reshape(
                f, 1, 1, 1, *tail[-2:]
            )
            folded = True
        for i, p in enumerate(ring.primes):
            acc[..., i, :] %= int(p)  # floor mod: exact also for negatives
    elif t_run > chunk:  # partial sums per chunk are each reduced; fold them
        acc %= ring.primes.reshape(-1, 1)
    if evaluator.counter is not None:
        lanes = b * oh * ow
        evaluator.counter.record("ct_plain_mul", f * t * lanes)
        if t > 1:  # the reference loop issues no add() for a single tap
            evaluator.counter.record("ct_add", f * (t - 1) * lanes)
    out = Ciphertext(
        ct.context, np.ascontiguousarray(np.moveaxis(acc, 0, 1)), is_ntt=True
    )
    if folded:
        if evaluator.counter is not None:
            evaluator.counter.record("plain_add", max(1, out.batch_count))
        return out
    return evaluator.add_plain_operand(out, weights.bias_operand)


def he_square(evaluator: Evaluator, ct: Ciphertext) -> Ciphertext:
    """CryptoNets activation: homomorphic elementwise square (size 2 -> 3)."""
    return evaluator.square(ct)


def he_scaled_mean_pool(
    evaluator: Evaluator, ct: Ciphertext, window: int
) -> Ciphertext:
    """Division-free pooling: homomorphic window sum (``EncryptedSum``)."""
    if len(ct.batch_shape) != 4:
        raise PipelineError("he_scaled_mean_pool expects a (B, C, H, W) batch")
    _, _, h, w = ct.batch_shape
    if h % window or w % window:
        raise PipelineError(f"feature map {h}x{w} not divisible by window {window}")
    if kernels.active().fused_layers:
        pieces = [
            ct[:, :, i::window, j::window].to_ntt().data
            for i in range(window)
            for j in range(window)
        ]
        summed = ct.context.ring.reduce_sum(np.stack(pieces), axis=0)
        result = Ciphertext(ct.context, summed, is_ntt=True)
        if evaluator.counter is not None:
            evaluator.counter.record(
                "ct_add", (window * window - 1) * max(1, result.batch_count)
            )
        return result
    acc: Ciphertext | None = None
    for i in range(window):
        for j in range(window):
            piece = ct[:, :, i::window, j::window]
            acc = piece if acc is None else evaluator.add(acc, piece)
    return acc


def he_dense(
    evaluator: Evaluator,
    encoder: ScalarEncoder,
    ct: Ciphertext,
    weights: EncodedDenseWeights,
    plan: LayerPlan | None = None,
) -> Ciphertext:
    """Homomorphic fully connected layer over a flattened ciphertext batch.

    Produces a ``(B, O)`` ciphertext of scaled logits: for every output
    class the flattened input batch is multiplied slot-wise by that class's
    weight vector and folded with a batched C + C reduction.  ``plan``
    carries graph-optimizer rewrites (see :class:`LayerPlan`).
    """
    b = ct.batch_shape[0]
    flat = ct.reshape(b, -1)
    d = flat.batch_shape[1]
    for oi, operand in enumerate(weights.operands):
        if operand.batch_shape != (d,):
            raise PipelineError(
                f"dense operand {oi} covers {operand.batch_shape} inputs, "
                f"ciphertext provides {d}"
            )
    if kernels.active().fused_layers and weights.bias_operand is not None:
        return _he_dense_fused(evaluator, flat, weights, plan=plan)
    outputs: list[Ciphertext] = []
    for oi, operand in enumerate(weights.operands):
        products = evaluator.multiply_plain(flat, operand)
        summed = evaluator.sum_batch(products, axis=1)
        bias_plain = encoder.encode(np.full((b,), int(weights.bias[oi]), dtype=np.int64))
        outputs.append(evaluator.add_plain(summed, bias_plain))
    data = np.stack([o.data for o in outputs], axis=1)
    return Ciphertext(ct.context, data, is_ntt=outputs[0].is_ntt)


def _he_dense_fused(
    evaluator: Evaluator,
    flat: Ciphertext,
    weights: EncodedDenseWeights,
    plan: LayerPlan | None = None,
) -> Ciphertext:
    """All-classes FC kernel: one fused multiply + deferred-reduction sum
    over the stacked ``(O, D, k, n)`` operand computes every output class at
    once; bit-identical to the per-class loop, with matching op tallies.
    Slot-constant scalar weights take the signed int64 matmul shortcut (one
    mod-p pass after the whole contraction).  Plan rewrites (zero-dim
    bypass, bias folding) apply only to that in-process shortcut; every
    other path ignores the plan bit-identically."""
    ring = flat.context.ring
    flat = flat.to_ntt()
    b, d = flat.batch_shape
    o = weights.out_features
    wmat = weights.weight_matrix
    p_max = int(ring.primes.max())
    keep = (
        list(plan.keep_taps)
        if plan is not None and plan.keep_taps is not None
        else None
    )
    fold = plan is not None and plan.fold_bias and weights.bias_operand is not None
    eff_wmat = wmat[:, keep] if (wmat is not None and keep is not None) else wmat
    d_eff = len(keep) if keep is not None else d
    folded = False
    if wmat is not None and _scalar_tap_bound_ok(wmat, d, p_max):
        # Multicore path: batch rows (or output classes for B == 1) as
        # shared-memory pool units, byte-identical to the matmul below.
        pooled = parallel.dispatch_dense(
            flat.data, wmat, primes=[int(p) for p in ring.primes]
        )
        if pooled is not None:
            if evaluator.counter is not None:
                evaluator.counter.record("ct_plain_mul", o * b * d)
                evaluator.counter.record("ct_add", o * (d - 1) * b)
            out = Ciphertext(flat.context, pooled, is_ntt=True)
            return evaluator.add_plain_operand(out, weights.bias_operand)
    if eff_wmat is not None and _scalar_tap_bound_ok(
        eff_wmat, d_eff, p_max, slack=1 if fold else 0
    ):
        fd = flat.data  # (B, D, size, k_rns, n)
        moved = np.ascontiguousarray(np.moveaxis(fd, 1, 0)).reshape(d, -1)
        if keep is not None:
            # Dropped input dims have a zero weight in every class: their
            # contribution to each modular sum is exactly zero.
            moved = moved[keep]
        summed = (eff_wmat @ moved).reshape(o, b, *fd.shape[2:])
        if fold:
            summed[..., 0, :, :] += weights.bias_operand.ntt_data.reshape(
                o, 1, *fd.shape[-2:]
            )
            folded = True
        for i, p in enumerate(ring.primes):
            summed[..., i, :] %= int(p)
    else:
        # (O, B, D, size, k_rns, n) product, reduced over D -> (O, B, ...).
        summed = ring.pointwise_mul_sum(
            flat.data[None],
            weights.class_stack[:, None, :, None, :, :],
            axis=2,
        )
    if evaluator.counter is not None:
        evaluator.counter.record("ct_plain_mul", o * b * d)
        evaluator.counter.record("ct_add", o * (d - 1) * b)
    out = Ciphertext(
        flat.context, np.ascontiguousarray(np.moveaxis(summed, 0, 1)), is_ntt=True
    )
    if folded:
        if evaluator.counter is not None:
            evaluator.counter.record("plain_add", max(1, out.batch_count))
        return out
    return evaluator.add_plain_operand(out, weights.bias_operand)
