"""The paper's contribution: privacy-preserving CNN inference pipelines.

Public surface:

* :class:`PlaintextPipeline` / :class:`FloatPipeline` -- accuracy references.
* :class:`CryptonetsPipeline` -- the pure-HE ``Encrypted`` baseline.
* :class:`HybridPipeline` -- the hybrid HE+SGX framework
  (``EncryptSGX`` / ``EncryptSGX(single)`` / ``EncryptFakeSGX`` modes).
* :class:`InferenceEnclave` -- the trusted co-processor + key authority.
* Key distribution: :class:`TrustedThirdParty` (Fig. 1 baseline) vs the
  attested flow (:func:`establish_user_keys`, :class:`UserClient`).
* Policies: :class:`PoolingPlacementPolicy` (Fig. 6 crossover) and
  :class:`RefreshPolicy` (Table V relinearization-vs-refresh choice).
* :func:`parameters_for_pipeline` / :func:`train_paper_models` -- sizing and
  model factories.
* The unified pipeline API: :class:`InferencePipeline` (the protocol every
  pipeline satisfies) and :func:`build_pipeline` (scheme-name factory).
"""

from repro.core.config import (
    TrainedModels,
    parameters_for_pipeline,
    required_budget_bits,
    train_paper_models,
)
from repro.core.cryptonets import CryptonetsPipeline
from repro.core.deep import DeepHybridPipeline, pure_he_modulus_bits_for_depth
from repro.core.enclave_service import ACTIVATIONS, InferenceEnclave
from repro.core.heops import (
    EncodedConvWeights,
    EncodedDenseWeights,
    EncodedModel,
    encode_conv_weights,
    encode_dense_weights,
    encode_model_weights,
    he_conv2d,
    he_dense,
    he_scaled_mean_pool,
    he_square,
)
from repro.core.hybrid import MODES, HybridPipeline
from repro.core.keyflow import (
    DeliveredKeys,
    SgxKeyDistribution,
    TrustedThirdParty,
    UserClient,
    establish_user_keys,
)
from repro.core.pipeline import (
    KERNEL_PROFILES,
    SCHEME_ALIASES,
    InferencePipeline,
    PipelineSpec,
    build_pipeline,
    resolve_scheme,
)
from repro.core.placement import (
    MeasuredChoice,
    PoolingPlacementPolicy,
    PoolStrategy,
    measure_placement,
    pool_with_strategy,
)
from repro.core.plaintext import FloatPipeline, PlaintextPipeline
from repro.core.refresh import (
    RefreshOutcome,
    RefreshPolicy,
    refresh,
    relinearize_refresh,
    sgx_refresh,
    sgx_refresh_one_by_one,
)
from repro.core.results import InferenceResult, StageTiming, stages_from_trace
from repro.core.server import EdgeServer, ServedResult, UserSession
from repro.core.simd import SimdHybridPipeline, SlotCodec

__all__ = [
    "ACTIVATIONS",
    "CryptonetsPipeline",
    "DeepHybridPipeline",
    "DeliveredKeys",
    "EdgeServer",
    "EncodedConvWeights",
    "EncodedDenseWeights",
    "EncodedModel",
    "FloatPipeline",
    "HybridPipeline",
    "InferenceEnclave",
    "InferencePipeline",
    "InferenceResult",
    "KERNEL_PROFILES",
    "MODES",
    "PipelineSpec",
    "SCHEME_ALIASES",
    "MeasuredChoice",
    "PlaintextPipeline",
    "PoolStrategy",
    "PoolingPlacementPolicy",
    "RefreshOutcome",
    "RefreshPolicy",
    "ServedResult",
    "SgxKeyDistribution",
    "UserSession",
    "SimdHybridPipeline",
    "SlotCodec",
    "StageTiming",
    "TrainedModels",
    "TrustedThirdParty",
    "UserClient",
    "build_pipeline",
    "encode_conv_weights",
    "encode_dense_weights",
    "encode_model_weights",
    "establish_user_keys",
    "he_conv2d",
    "he_dense",
    "he_scaled_mean_pool",
    "he_square",
    "measure_placement",
    "parameters_for_pipeline",
    "pool_with_strategy",
    "pure_he_modulus_bits_for_depth",
    "refresh",
    "relinearize_refresh",
    "required_budget_bits",
    "resolve_scheme",
    "sgx_refresh",
    "sgx_refresh_one_by_one",
    "stages_from_trace",
    "train_paper_models",
]
