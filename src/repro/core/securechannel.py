"""Authenticated secure channel for attested key delivery.

The paper's Section IV-A sends homomorphic public/private keys to the user
"as customized data" of the remote-attestation report.  Key material is far
larger than a report's user_data field, so -- as real deployments do -- we
bind a Diffie-Hellman handshake into the attested user_data and ship the
bulk payload encrypted under the session key:

1. the user sends a DH share;
2. the enclave replies with its share *inside the attested quote's
   user_data*, so the user knows the share came from measured code;
3. both derive a session key; the enclave ships the (private!) HE keys
   encrypted and MACed under it, through the untrusted host.

The DH group is RFC 3526 group 14 (2048-bit MODP); the symmetric layer is a
SHA-256 counter-mode stream with an HMAC tag, mirroring repro.sgx.sealing.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass

from repro.errors import AttestationError

# RFC 3526, group 14: 2048-bit MODP prime, generator 2.
RFC3526_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
RFC3526_GENERATOR = 2


@dataclass(frozen=True)
class DhKeyPair:
    """One side's ephemeral Diffie-Hellman key."""

    private: int
    public: int

    @classmethod
    def generate(cls, rng_bytes: bytes) -> "DhKeyPair":
        """Derive a keypair from caller-supplied entropy (32+ bytes)."""
        if len(rng_bytes) < 32:
            raise AttestationError("DH entropy must be at least 32 bytes")
        private = int.from_bytes(hashlib.sha512(rng_bytes).digest(), "big") % (
            RFC3526_PRIME - 2
        ) + 2
        public = pow(RFC3526_GENERATOR, private, RFC3526_PRIME)
        return cls(private=private, public=public)

    def shared_secret(self, other_public: int) -> bytes:
        if not 2 <= other_public <= RFC3526_PRIME - 2:
            raise AttestationError("peer DH share out of range")
        shared = pow(other_public, self.private, RFC3526_PRIME)
        return hashlib.sha256(shared.to_bytes(256, "big")).digest()


def bind_user_data(dh_public: int, payload_digest: bytes) -> bytes:
    """The attested user_data: enclave DH share + digest of the payload.

    Verifying the quote therefore authenticates both the handshake and the
    exact key bytes that arrive over the untrusted channel.
    """
    return dh_public.to_bytes(256, "big") + payload_digest


def split_user_data(user_data: bytes) -> tuple[int, bytes]:
    if len(user_data) < 256 + 32:
        raise AttestationError("attested user_data too short for a DH share + digest")
    return int.from_bytes(user_data[:256], "big"), user_data[256 : 256 + 32]


@dataclass(frozen=True)
class SealedMessage:
    """Encrypted + MACed payload for the untrusted transport."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range(-(-length // 32)):
        blocks.append(hashlib.sha256(key + nonce + struct.pack(">Q", counter)).digest())
    return b"".join(blocks)[:length]


def encrypt_message(session_key: bytes, payload: bytes, nonce: bytes) -> SealedMessage:
    if len(nonce) != 16:
        raise AttestationError("nonce must be 16 bytes")
    stream = _keystream(session_key, nonce, len(payload))
    ciphertext = bytes(a ^ b for a, b in zip(payload, stream))
    tag = hmac.new(session_key, nonce + ciphertext, hashlib.sha256).digest()
    return SealedMessage(nonce=nonce, ciphertext=ciphertext, tag=tag)


def decrypt_message(session_key: bytes, message: SealedMessage) -> bytes:
    expected = hmac.new(
        session_key, message.nonce + message.ciphertext, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(expected, message.tag):
        raise AttestationError("secure-channel MAC failed: payload tampered in transit")
    stream = _keystream(session_key, message.nonce, len(message.ciphertext))
    return bytes(a ^ b for a, b in zip(message.ciphertext, stream))


def payload_digest(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()
