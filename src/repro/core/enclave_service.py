"""The edge server's inference enclave: trusted code of the hybrid framework.

One enclave class covers every trusted duty the paper assigns to SGX:

* **Key authority** (Section IV-A): generates the FV key pair *inside* the
  enclave and releases the private key only through the attested
  secure-channel handshake -- no external trusted third party.
* **Relinearization-key generation** (Section III-A): the evaluation keys
  require the secret key, so the enclave produces them for the untrusted
  evaluator.
* **Plaintext computing** (Section IV-D): activation functions and pooling
  are decrypted, computed exactly, and re-encrypted inside the enclave.
* **Noise refresh** (Section IV-E): decrypt/re-encrypt replaces
  relinearization, resetting ciphertext noise to fresh level.

The secret key never appears in any ECALL return value except the encrypted
key-exchange payload; a test asserts this boundary.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core import securechannel
from repro.errors import EncodingError, PipelineError
from repro.he import kernels
from repro.he.context import Ciphertext, Context, Plaintext
from repro.he.decryptor import Decryptor
from repro.he.encryptor import SymmetricEncryptor
from repro.he.keys import KeyGenerator, KeyPair, PublicKey, RelinKeys
from repro.he.params import EncryptionParams
from repro.he.serialize import (
    deserialize_public_key,
    deserialize_secret_key,
    serialize_public_key,
    serialize_secret_key,
)
from repro.nn.layers import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.sgx.enclave import Enclave
from repro.sgx.ecall import ecall

#: Activation functions the enclave can evaluate exactly (paper Section VI-C:
#: "SGX enables the calculation of diverse activation functions flexibly").
ACTIVATIONS = {
    "sigmoid": Sigmoid.apply,
    "relu": ReLU.apply,
    "tanh": Tanh.apply,
    "leaky_relu": lambda x: LeakyReLU(0.01).forward(x),
}


class InferenceEnclave(Enclave):
    """Trusted co-processor for the hybrid HE+SGX pipeline.

    Args:
        params: FV parameter set the service operates under.
        seed: deterministic randomness for reproducible benchmarks.
    """

    def __init__(self, params: EncryptionParams, seed: int | None = None) -> None:
        super().__init__()
        self._context = Context(params)
        self._rng = np.random.default_rng(seed)
        self._keygen = KeyGenerator(self._context, self._rng)
        self._keys = None
        self._decryptor: Decryptor | None = None
        self._encryptor: SymmetricEncryptor | None = None

    # ------------------------------------------------------------------
    # key authority
    # ------------------------------------------------------------------
    @ecall
    def generate_keys(self) -> PublicKey:
        """FV key generation inside the enclave; only the public key leaves."""
        self._keys = self._keygen.generate()
        self._decryptor = Decryptor(self._context, self._keys.secret)
        self._encryptor = SymmetricEncryptor(self._context, self._keys.secret, self._rng)
        return self._keys.public

    @ecall
    def snapshot_keys(self):
        """Seal the FV key pair for crash recovery (supervisor-driven).

        The blob is bound to this MRENCLAVE on this platform, so persisting
        it to untrusted storage releases nothing; only a restarted instance
        of the *same* trusted code can :meth:`restore_keys` from it.
        """
        self._require_keys()
        payload = _pack_key_pair(
            serialize_public_key(self._keys.public),
            serialize_secret_key(self._keys.secret),
        )
        return self.seal(payload)

    @ecall
    def restore_keys(self, blob, nonce: bytes) -> None:
        """Unseal a :meth:`snapshot_keys` blob into a restarted enclave and
        approve ``nonce`` for the supervisor's re-attestation report.

        Raises:
            SealingError: the blob was sealed by different trusted code, a
                different platform, or was tampered with -- recovery must not
                proceed on such keys.
        """
        payload = self.unseal(blob)
        public_bytes, secret_bytes = unpack_key_pair(payload)
        self._keys = KeyPair(
            public=deserialize_public_key(public_bytes, self._context),
            secret=deserialize_secret_key(secret_bytes, self._context),
        )
        self._decryptor = Decryptor(self._context, self._keys.secret)
        self._encryptor = SymmetricEncryptor(self._context, self._keys.secret, self._rng)
        self.attest(nonce)

    @ecall
    def get_public_key(self) -> PublicKey:
        self._require_keys()
        return self._keys.public

    @ecall
    def generate_relin_keys(self) -> RelinKeys:
        """Evaluation keys for the untrusted evaluator (needs the secret)."""
        self._require_keys()
        return self._keygen.relin_keys(self._keys.secret)

    @ecall
    def key_exchange(self, user_dh_public: int) -> tuple:
        """Attested key delivery (Section IV-A).

        Returns ``(sealed_message, user_data)``: the FV key pair encrypted
        under the DH session key, and the user_data -- enclave DH share plus
        payload digest -- that this call approves for the next report.  The
        host forwards both, plus the quote over ``user_data``, to the user.
        """
        self._require_keys()
        entropy = self._rng.bytes(32)
        dh = securechannel.DhKeyPair.generate(entropy)
        session_key = dh.shared_secret(user_dh_public)
        payload = _pack_key_pair(
            serialize_public_key(self._keys.public),
            serialize_secret_key(self._keys.secret),
        )
        nonce = self._rng.bytes(16)
        message = securechannel.encrypt_message(session_key, payload, nonce)
        digest = securechannel.payload_digest(
            message.nonce + message.ciphertext + message.tag
        )
        user_data = securechannel.bind_user_data(dh.public, digest)
        self.attest(user_data)
        return message, user_data

    # ------------------------------------------------------------------
    # plaintext computing (Section IV-D)
    # ------------------------------------------------------------------
    @ecall
    def activation_pool(
        self,
        ct: Ciphertext,
        input_scale: float,
        output_scale: int,
        window: int,
        activation: str = "sigmoid",
        pool: str = "mean",
    ) -> Ciphertext:
        """Decrypt, apply the exact activation + pooling, re-encrypt.

        This is the paper's batched ``EncryptSGX`` step: one enclave crossing
        per feature-map batch instead of one per pixel.  ``pool`` may be
        ``mean`` or ``max`` -- max-pooling is only computable here
        (Section VI-D).
        """
        values = self._decrypt_values(ct).astype(np.float64) / input_scale
        activated = self._apply_activation(values, activation)
        if pool == "max":
            pooled = _max_pool(activated, window)
        elif pool == "mean":
            pooled = _mean_pool(activated, window)
        else:
            raise PipelineError(f"unsupported enclave pool {pool!r}")
        requantized = np.rint(pooled * output_scale).astype(np.int64)
        return self._encrypt_values(requantized)

    @ecall
    def sigmoid(self, ct: Ciphertext, input_scale: float, output_scale: int) -> Ciphertext:
        """Exact sigmoid only (Fig. 5's ``SGXSigmoid`` operation)."""
        values = self._decrypt_values(ct).astype(np.float64) / input_scale
        requantized = np.rint(Sigmoid.apply(values) * output_scale).astype(np.int64)
        return self._encrypt_values(requantized)

    @ecall
    def divide(self, ct: Ciphertext, divisor: int) -> Ciphertext:
        """Exact division for mean-pooling (Fig. 6's ``SGXDivide``): the
        window sum was computed homomorphically outside; only the non-linear
        division enters the enclave."""
        if divisor <= 0:
            raise PipelineError("divisor must be positive")
        values = self._decrypt_values(ct)
        quotient = np.rint(values / divisor).astype(np.int64)
        return self._encrypt_values(quotient)

    @ecall
    def mean_pool(self, ct: Ciphertext, window: int) -> Ciphertext:
        """Whole pooling inside the enclave (Fig. 6's ``SGXPool``): the full
        feature map is decrypted, summed and divided in trusted code."""
        values = self._decrypt_values(ct)
        pooled = np.rint(_mean_pool(values.astype(np.float64), window)).astype(np.int64)
        return self._encrypt_values(pooled)

    @ecall
    def max_pool(self, ct: Ciphertext, window: int) -> Ciphertext:
        """Max pooling -- impossible under HE, trivial in the enclave
        (Section VI-D: "we obviously can only use SGX to perform
        max-pooling in our scenario")."""
        values = self._decrypt_values(ct)
        b, c, h, w = values.shape
        windows = values.reshape(b, c, h // window, window, w // window, window)
        return self._encrypt_values(windows.max(axis=(3, 5)))

    @ecall
    def activation_pool_simd(
        self,
        ct: Ciphertext,
        input_scale: float,
        output_scale: int,
        window: int,
        activation: str = "sigmoid",
        pool: str = "mean",
    ) -> Ciphertext:
        """Slot-packed variant of :meth:`activation_pool` (Section VIII).

        The ciphertext batch is ``(1, C, H, W)`` with user images in the CRT
        slots; the enclave decrypts, *decodes the slots*, applies the exact
        activation + pooling to every user simultaneously, re-packs and
        re-encrypts.
        """
        if output_scale > self._context.plain_modulus // 2:
            raise PipelineError("output_scale exceeds the plaintext range")
        self._load_crypto_state()
        codec = self._batch_encoder()
        plain = self._decryptor.decrypt(ct)
        # (n, C, H, W): every slot is one user's feature map.
        values = codec.decode_batch_axis(plain, codec.slot_count).astype(np.float64)
        activated = self._apply_activation(values / input_scale, activation)
        if pool == "max":
            pooled = _max_pool(activated, window)
        elif pool == "mean":
            pooled = _mean_pool(activated, window)
        else:
            raise PipelineError(f"unsupported enclave pool {pool!r}")
        requantized = np.rint(pooled * output_scale).astype(np.int64)
        return self._encryptor.encrypt(codec.encode_batch_axis(requantized))

    @ecall
    def activation_pool_packed(
        self,
        ct: Ciphertext,
        shape: tuple,
        chunk: int,
        input_scale: float,
        output_scale: int,
        window: int,
        activation: str = "sigmoid",
        pool: str = "mean",
    ) -> Ciphertext:
        """Coefficient-packed variant of :meth:`activation_pool`.

        The host flattens the whole ``shape``-d feature-map tensor and
        folds runs of ``chunk`` values into the polynomial *coefficients*
        of single ciphertexts (:func:`~repro.he.batching.pack_coefficients`),
        so the payload this call marshals and decrypts shrinks from one
        ciphertext per value to ``ceil(N / chunk)`` ciphertexts total.
        Ciphertext ``j`` carries flat values ``j * chunk ..`` in its
        coefficients (a possibly-shorter tail ciphertext carries the
        remainder).  The trusted side re-reads the coefficients, restores
        ``shape``, applies the exact activation + pooling to every element,
        and re-encrypts one scalar-encoded ciphertext per element -- the
        same values through the same :meth:`_encrypt_values` RNG draws as
        the unpacked crossing, so the output bytes are identical.
        """
        if chunk < 1 or chunk > self._context.poly_degree:
            raise PipelineError(
                f"chunk must be in [1, {self._context.poly_degree}], got {chunk}"
            )
        self._load_crypto_state()
        plain = self._decryptor.decrypt(ct)
        coeffs = plain.signed_coeffs().reshape(-1, self._context.poly_degree)
        total = int(np.prod(shape))
        full, remainder = divmod(total, chunk)
        expected = full + (1 if remainder else 0)
        if coeffs.shape[0] != expected:
            raise PipelineError(
                f"packed payload carries {coeffs.shape[0]} ciphertexts; "
                f"shape {tuple(shape)} at chunk {chunk} needs {expected}"
            )
        parts = []
        if full:
            parts.append(coeffs[:full, :chunk].reshape(-1))
        if remainder:
            parts.append(coeffs[full, :remainder])
        values = np.concatenate(parts).reshape(shape)
        scaled = values.astype(np.float64) / input_scale
        activated = self._apply_activation(scaled, activation)
        if pool == "max":
            pooled = _max_pool(activated, window)
        elif pool == "mean":
            pooled = _mean_pool(activated, window)
        else:
            raise PipelineError(f"unsupported enclave pool {pool!r}")
        requantized = np.rint(pooled * output_scale).astype(np.int64)
        return self._encrypt_values(requantized)

    @ecall
    def pack_slots(self, ct: Ciphertext, batch: int) -> Ciphertext:
        """Convert a *coefficient-packed* ciphertext into a slot-packed
        ``(1, ...)`` ciphertext with request row ``b`` in CRT slot ``b``.

        The host pre-folds the ``batch`` stacked requests into polynomial
        coefficients homomorphically
        (:func:`~repro.he.batching.pack_coefficients`), so only one
        ciphertext per tensor position crosses the boundary and is decrypted
        here -- the trusted side merely re-reads coefficients ``0..batch-1``
        and re-encodes them into slots.

        This is the serving scheduler's batch-formation step: because the
        enclave is the key authority, every enrolled user's ciphertext is
        under the same key pair, so requests from different users may legally
        share slots.  The re-layout happens entirely inside trusted code --
        nothing is exposed to the host in the clear.
        """
        if batch < 1 or batch > self._context.poly_degree:
            raise PipelineError(
                f"batch must be in [1, {self._context.poly_degree}], got {batch}"
            )
        self._load_crypto_state()
        plain = self._decryptor.decrypt(ct)
        values = np.moveaxis(plain.signed_coeffs()[..., :batch], -1, 0)
        return self._encryptor.encrypt(self._batch_encoder().encode_batch_axis(values))

    @ecall
    def unpack_slots(self, ct: Ciphertext, batch: int) -> Ciphertext:
        """Inverse of :meth:`pack_slots`: split a slot-packed ``(1, ...)``
        ciphertext back into a scalar-encoded ``(batch, ...)`` ciphertext so
        each request's encrypted logits can be returned individually."""
        self._load_crypto_state()
        plain = self._decryptor.decrypt(ct)
        values = self._batch_encoder().decode_batch_axis(plain, batch)
        return self._encrypt_values(values)

    def _batch_encoder(self):
        if getattr(self, "_batch_encoder_cache", None) is None:
            from repro.he.batching import BatchEncoder

            self._batch_encoder_cache = BatchEncoder(self._context)
        return self._batch_encoder_cache

    # ------------------------------------------------------------------
    # noise refresh (Section IV-E)
    # ------------------------------------------------------------------
    @ecall
    def refresh(self, ct: Ciphertext) -> Ciphertext:
        """Decrypt/re-encrypt: removes accumulated noise *and* shrinks
        size-3 post-multiplication ciphertexts back to size 2 without any
        relinearization keys."""
        self._load_crypto_state()
        plain = self._decryptor.decrypt(ct)
        return self._encryptor.encrypt(plain)

    # ------------------------------------------------------------------
    # internals (trusted-only helpers)
    # ------------------------------------------------------------------
    def _require_keys(self) -> None:
        if self._keys is None:
            raise PipelineError("generate_keys must be called first")

    def _crypto_state_bytes(self) -> int:
        """In-enclave working set of one crypto operation: the NTT tables of
        the homomorphic context plus the loaded key material.

        Each crossing pages this state back into the EPC; the paper's
        Table V / Section VII-B analysis attributes the single-vs-batched
        gap to exactly this per-crossing key (re)loading.
        """
        ring = self._context.ring
        tables = ring.k * ring.n * 8 * 4  # psi / psi^-1 tables, both directions
        keys = 0
        if self._keys is not None:
            keys = self._keys.secret.byte_size() + self._keys.public.byte_size()
        return tables + keys

    def _load_crypto_state(self) -> None:
        self._require_keys()
        self.touch_working_set(self._crypto_state_bytes())

    def _decrypt_values(self, ct: Ciphertext) -> np.ndarray:
        self._load_crypto_state()
        ring = self._context.ring
        if kernels.active().fast_decrypt and ring.q_fits_int64:
            # O(n)-per-value constant-coefficient decrypt: same centered
            # values, probe-coefficient overflow check instead of scanning
            # all n - 1 upper coefficients.
            try:
                return self._decryptor.decrypt_constants(ct)
            except EncodingError as exc:
                raise PipelineError(
                    "ciphertext does not hold scalar-encoded values; the "
                    "outside computation overflowed or used a different encoder"
                ) from exc
        plain = self._decryptor.decrypt(ct)
        t = self._context.plain_modulus
        constants = plain.coeffs[..., 0]
        if plain.coeffs[..., 1:].any():
            raise PipelineError(
                "ciphertext does not hold scalar-encoded values; the outside "
                "computation overflowed or used a different encoder"
            )
        return np.where(constants > t // 2, constants - t, constants)

    def _encrypt_values(self, values: np.ndarray) -> Ciphertext:
        t = self._context.plain_modulus
        limit = t // 2
        if (np.abs(values) > limit).any():
            raise PipelineError(
                f"re-encryption values exceed the plaintext range +-{limit}"
            )
        coeffs = np.zeros((*values.shape, self._context.poly_degree), dtype=np.int64)
        coeffs[..., 0] = values % t
        return self._encryptor.encrypt(Plaintext(self._context, coeffs))

    @staticmethod
    def _apply_activation(values: np.ndarray, name: str) -> np.ndarray:
        fn = ACTIVATIONS.get(name)
        if fn is None:
            raise PipelineError(
                f"unsupported activation {name!r}; available: {sorted(ACTIVATIONS)}"
            )
        return fn(values)


def _pool_windows(values: np.ndarray, window: int) -> np.ndarray:
    if values.ndim != 4:
        raise PipelineError("pooling expects (B, C, H, W) values")
    b, c, h, w = values.shape
    if h % window or w % window:
        raise PipelineError(f"map {h}x{w} not divisible by window {window}")
    return values.reshape(b, c, h // window, window, w // window, window)


def _mean_pool(values: np.ndarray, window: int) -> np.ndarray:
    return _pool_windows(values, window).mean(axis=(3, 5))


def _max_pool(values: np.ndarray, window: int) -> np.ndarray:
    return _pool_windows(values, window).max(axis=(3, 5))


def _pack_key_pair(public_bytes: bytes, secret_bytes: bytes) -> bytes:
    return struct.pack("<II", len(public_bytes), len(secret_bytes)) + public_bytes + secret_bytes


def unpack_key_pair(payload: bytes) -> tuple[bytes, bytes]:
    """Inverse of the enclave's key-pair packing (user side)."""
    pub_len, sec_len = struct.unpack_from("<II", payload, 0)
    offset = struct.calcsize("<II")
    return payload[offset : offset + pub_len], payload[offset + pub_len : offset + pub_len + sec_len]
