"""Plaintext inference pipelines: the accuracy references.

Two references matter for the paper's claims:

* the float model itself (what a non-private edge server would run);
* the *integer* reference -- the quantized model executed in the clear --
  which both encrypted pipelines must match bit-exactly, because FV
  arithmetic is exact integer arithmetic mod ``t``.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import InferenceResult, StageTiming, stages_from_trace
from repro.nn.model import Sequential
from repro.nn.quantize import QuantizedCNN
from repro.obs import Tracer
from repro.sgx.clock import SimClock


class PlaintextPipeline:
    """Quantized-integer inference in the clear.

    This is the ground truth the encrypted pipelines are compared against:
    same quantization, same stage functions, no cryptography.
    """

    scheme = "Plaintext"

    def __init__(self, quantized: QuantizedCNN, clock: SimClock | None = None) -> None:
        self.quantized = quantized
        self.clock = clock if clock is not None else SimClock()
        self.tracer = Tracer(self.clock)

    def encrypt_images(self, images: np.ndarray) -> np.ndarray:
        """Identity "encryption": the reference pipeline computes in the
        clear, so this is just the quantization step.  Present so the class
        satisfies the :class:`~repro.core.pipeline.InferencePipeline`
        protocol and can stand in for an encrypted pipeline in tests."""
        return self.quantized.quantize_images(images)

    def infer(self, images: np.ndarray) -> InferenceResult:
        with self.tracer.span(
            self.scheme, kind="pipeline", batch=int(images.shape[0])
        ) as trace:
            with self.tracer.stage("quantize"):
                x = self.quantized.quantize_images(images)

            with self.tracer.stage("conv"):
                conv = self.quantized.conv_stage(x)

            with self.tracer.stage("activation_pool"):
                if self.quantized.activation == "square":
                    hidden = self.quantized.scaled_pool_stage(
                        self.quantized.square_stage(conv)
                    )
                else:
                    hidden = self.quantized.enclave_stage(conv)

            with self.tracer.stage("fc"):
                logits = self.quantized.fc_stage(hidden)

        return InferenceResult(
            logits=logits,
            stages=stages_from_trace(trace),
            scheme=self.scheme,
            trace=trace,
        )


class FloatPipeline:
    """The unquantized float model, for accuracy headroom comparisons."""

    scheme = "Float"

    def __init__(self, model: Sequential) -> None:
        self.model = model

    def infer(self, images: np.ndarray) -> InferenceResult:
        floats = images.astype(np.float64) / 255.0 if images.dtype == np.uint8 else images
        import time

        start = time.perf_counter()
        logits = self.model.forward(floats)
        elapsed = time.perf_counter() - start
        return InferenceResult(
            logits=logits,
            stages=[StageTiming("forward", elapsed)],
            scheme=self.scheme,
        )
