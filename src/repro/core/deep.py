"""Deep hybrid inference: the framework past the paper's single block.

The paper's Section VIII concedes that building large networks under pure
HE is "challenging" -- every extra multiplication level inflates the
coefficient modulus and the runtime.  The hybrid framework does not have
that problem: the enclave re-encrypts at every activation, so homomorphic
noise never accumulates across blocks and *one* modest parameter set serves
any depth.  :class:`DeepHybridPipeline` demonstrates it by running
multi-block CNNs (see :mod:`repro.nn.deep`) block by block:

    HE conv (outside) -> enclave activation+pool -> HE conv -> ... -> HE FC

``benchmarks/bench_ablation_depth.py`` quantifies the asymmetry against a
hypothetical pure-HE evaluation of the same depth.
"""

from __future__ import annotations

import numpy as np

from repro.core import heops
from repro.core.enclave_service import InferenceEnclave
from repro.core.keyflow import establish_user_keys
from repro.core.results import InferenceResult, stages_from_trace
from repro.errors import PipelineError
from repro.faults import EnclaveSupervisor, run_with_kernel_degradation
from repro.he import kernels
from repro.he.context import Context
from repro.he.decryptor import Decryptor, decrypt_scalar_values
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.he.evaluator import Evaluator, OperationCounter
from repro.he.params import EncryptionParams
from repro.nn.deep import DeepQuantizedCNN
from repro.sgx.attestation import AttestationVerificationService, QuotingService
from repro.sgx.enclave import SgxPlatform


class DeepHybridPipeline:
    """Hybrid HE+SGX inference over multi-block quantized CNNs.

    Args:
        quantized: a :class:`~repro.nn.deep.DeepQuantizedCNN`.
        params: FV parameters sized for ONE linear layer (depth-independent).
        platform: simulated SGX machine.
        seed: reproducible randomness.
    """

    scheme = "DeepEncryptSGX"

    def __init__(
        self,
        quantized: DeepQuantizedCNN,
        params: EncryptionParams,
        platform: SgxPlatform | None = None,
        seed: int | None = None,
    ) -> None:
        if not quantized.fits_plain_modulus(params.plain_modulus):
            raise PipelineError(
                f"plain_modulus {params.plain_modulus} cannot hold the "
                f"intermediates (need >= {quantized.required_plain_modulus()})"
            )
        self.quantized = quantized
        self.params = params
        self.platform = platform if platform is not None else SgxPlatform()
        self.clock = self.platform.clock
        self.tracer = self.platform.tracer
        self.context = Context(params)
        self.enclave = EnclaveSupervisor(self.platform, InferenceEnclave, params, seed)
        self.enclave.ecall("generate_keys")
        self.quoting = QuotingService(self.platform)
        self.verifier = AttestationVerificationService()
        self.verifier.register_platform(self.quoting)
        user_keys = establish_user_keys(
            self.platform, self.enclave, self.quoting, self.verifier, params,
            np.random.default_rng(seed).bytes(32),
        )
        self.counter = OperationCounter()
        self.evaluator = Evaluator(self.context, self.counter)
        self.encoder = ScalarEncoder(self.context)
        self.encryptor = Encryptor(self.context, user_keys.public, np.random.default_rng(seed))
        self.decryptor = Decryptor(self.context, user_keys.secret)
        self.block_weights = [
            heops.encode_conv_weights(
                self.evaluator, self.encoder, block.weight, block.bias, block.stride
            )
            for block in quantized.blocks
        ]
        self.dense_weights = heops.encode_dense_weights(
            self.evaluator, self.encoder, quantized.dense_weight, quantized.dense_bias
        )

    def encrypt_images(self, images: np.ndarray):
        pixels = self.quantized.quantize_images(images)
        return self.encryptor.encrypt(self.encoder.encode(pixels))

    def _stage(self, name: str):
        return self.tracer.stage(
            name, counter=self.counter, side_channel=self.enclave.side_channel
        )

    def infer(self, images: np.ndarray) -> InferenceResult:
        """One inference; degrades FUSED -> REFERENCE kernels and retries
        once if the runtime equivalence guard trips (identical logits)."""
        return run_with_kernel_degradation(
            self.tracer, self.scheme, lambda: self._infer_once(images)
        )

    def _infer_once(self, images: np.ndarray) -> InferenceResult:
        with self.tracer.span(
            self.scheme,
            kind="pipeline",
            counter=self.counter,
            side_channel=self.enclave.side_channel,
            kernel_mode=kernels.active().mode_name,
            batch=int(images.shape[0]),
            blocks=len(self.quantized.blocks),
        ) as trace:
            with self._stage("encrypt"):
                ct = self.encrypt_images(images)

            for i, (block, weights) in enumerate(
                zip(self.quantized.blocks, self.block_weights)
            ):
                with self._stage(f"conv_{i}"):
                    conv = heops.he_conv2d(self.evaluator, self.encoder, ct, weights)
                in_scale = self.quantized.block_input_scale(i) * block.weight_scale
                with self._stage(f"sgx_block_{i}"):
                    ct = self.enclave.ecall(
                        "activation_pool",
                        conv,
                        in_scale,
                        block.act_scale,
                        block.pool_window,
                        block.activation,
                        block.pool,
                    )

            with self._stage("fc"):
                logits_ct = heops.he_dense(
                    self.evaluator, self.encoder, ct, self.dense_weights
                )

            budget = self.decryptor.invariant_noise_budget(logits_ct)
            with self._stage("decrypt"):
                logits = decrypt_scalar_values(self.decryptor, self.encoder, logits_ct)

        return InferenceResult(
            logits=logits,
            stages=stages_from_trace(trace),
            scheme=self.scheme,
            noise_budget_bits=budget,
            op_counts=dict(self.counter.counts),
            enclave_crossings=trace.crossings,
            trace=trace,
        )


def pure_he_modulus_bits_for_depth(
    depth: int, plain_bits: float, poly_degree: int, margin_bits: float = 8.0
) -> float:
    """Estimate the log2(q) a *pure-HE* evaluation of ``depth`` multiplicative
    levels would need (no enclave refresh, CryptoNets-style squares).

    Uses the :class:`~repro.he.noise.NoiseEstimator` cost model: each level
    costs about ``log2(t) + log2(n) + c`` bits of budget.  The deep hybrid
    never needs more than one level -- this function is the analytic half of
    the depth ablation.
    """
    import math

    fresh_overhead = plain_bits + math.log2(2 * 6.0 * 3.2 * (2 * poly_degree + 1))
    per_level = plain_bits + math.log2(poly_degree) + 3.0
    return fresh_overhead + depth * per_level + margin_bits
