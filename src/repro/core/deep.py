"""Deep hybrid inference: the framework past the paper's single block.

The paper's Section VIII concedes that building large networks under pure
HE is "challenging" -- every extra multiplication level inflates the
coefficient modulus and the runtime.  The hybrid framework does not have
that problem: the enclave re-encrypts at every activation, so homomorphic
noise never accumulates across blocks and *one* modest parameter set serves
any depth.  :class:`DeepHybridPipeline` demonstrates it by running
multi-block CNNs (see :mod:`repro.nn.deep`) block by block:

    HE conv (outside) -> enclave activation+pool -> HE conv -> ... -> HE FC

``benchmarks/bench_ablation_depth.py`` quantifies the asymmetry against a
hypothetical pure-HE evaluation of the same depth.
"""

from __future__ import annotations

import numpy as np

from repro.core import heops
from repro.core.enclave_service import InferenceEnclave
from repro.core.keyflow import establish_user_keys
from repro.core.results import InferenceResult, StageTiming
from repro.errors import PipelineError
from repro.he.context import Context
from repro.he.decryptor import Decryptor
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.he.evaluator import Evaluator, OperationCounter
from repro.he.params import EncryptionParams
from repro.nn.deep import DeepQuantizedCNN
from repro.sgx.attestation import AttestationVerificationService, QuotingService
from repro.sgx.clock import ClockWindow
from repro.sgx.enclave import SgxPlatform


class DeepHybridPipeline:
    """Hybrid HE+SGX inference over multi-block quantized CNNs.

    Args:
        quantized: a :class:`~repro.nn.deep.DeepQuantizedCNN`.
        params: FV parameters sized for ONE linear layer (depth-independent).
        platform: simulated SGX machine.
        seed: reproducible randomness.
    """

    scheme = "DeepEncryptSGX"

    def __init__(
        self,
        quantized: DeepQuantizedCNN,
        params: EncryptionParams,
        platform: SgxPlatform | None = None,
        seed: int | None = None,
    ) -> None:
        if not quantized.fits_plain_modulus(params.plain_modulus):
            raise PipelineError(
                f"plain_modulus {params.plain_modulus} cannot hold the "
                f"intermediates (need >= {quantized.required_plain_modulus()})"
            )
        self.quantized = quantized
        self.params = params
        self.platform = platform if platform is not None else SgxPlatform()
        self.clock = self.platform.clock
        self.context = Context(params)
        self.enclave = self.platform.load_enclave(InferenceEnclave, params, seed)
        self.enclave.ecall("generate_keys")
        self.quoting = QuotingService(self.platform)
        self.verifier = AttestationVerificationService()
        self.verifier.register_platform(self.quoting)
        user_keys = establish_user_keys(
            self.platform, self.enclave, self.quoting, self.verifier, params,
            np.random.default_rng(seed).bytes(32),
        )
        self.counter = OperationCounter()
        self.evaluator = Evaluator(self.context, self.counter)
        self.encoder = ScalarEncoder(self.context)
        self.encryptor = Encryptor(self.context, user_keys.public, np.random.default_rng(seed))
        self.decryptor = Decryptor(self.context, user_keys.secret)
        self.block_weights = [
            heops.encode_conv_weights(
                self.evaluator, self.encoder, block.weight, block.bias, block.stride
            )
            for block in quantized.blocks
        ]
        self.dense_weights = heops.encode_dense_weights(
            self.evaluator, self.encoder, quantized.dense_weight, quantized.dense_bias
        )

    def encrypt_images(self, images: np.ndarray):
        pixels = self.quantized.quantize_images(images)
        return self.encryptor.encrypt(self.encoder.encode(pixels))

    def infer(self, images: np.ndarray) -> InferenceResult:
        stages: list[StageTiming] = []
        window = ClockWindow(self.clock)
        crossings_before = self.enclave.side_channel.count("ecall")

        def finish(name: str) -> None:
            stages.append(StageTiming(name, window.real_s, window.overhead_s))
            window.restart()

        with self.clock.measure_real():
            ct = self.encrypt_images(images)
        finish("encrypt")

        for i, (block, weights) in enumerate(
            zip(self.quantized.blocks, self.block_weights)
        ):
            with self.clock.measure_real():
                conv = heops.he_conv2d(self.evaluator, self.encoder, ct, weights)
            finish(f"conv_{i}")
            in_scale = self.quantized.block_input_scale(i) * block.weight_scale
            ct = self.enclave.ecall(
                "activation_pool",
                conv,
                in_scale,
                block.act_scale,
                block.pool_window,
                block.activation,
                block.pool,
            )
            finish(f"sgx_block_{i}")

        with self.clock.measure_real():
            logits_ct = heops.he_dense(self.evaluator, self.encoder, ct, self.dense_weights)
        finish("fc")

        budget = self.decryptor.invariant_noise_budget(logits_ct)
        with self.clock.measure_real():
            logits = self.encoder.decode(self.decryptor.decrypt(logits_ct))
        finish("decrypt")

        return InferenceResult(
            logits=logits,
            stages=stages,
            scheme=self.scheme,
            noise_budget_bits=budget,
            op_counts=dict(self.counter.counts),
            enclave_crossings=self.enclave.side_channel.count("ecall") - crossings_before,
        )


def pure_he_modulus_bits_for_depth(
    depth: int, plain_bits: float, poly_degree: int, margin_bits: float = 8.0
) -> float:
    """Estimate the log2(q) a *pure-HE* evaluation of ``depth`` multiplicative
    levels would need (no enclave refresh, CryptoNets-style squares).

    Uses the :class:`~repro.he.noise.NoiseEstimator` cost model: each level
    costs about ``log2(t) + log2(n) + c`` bits of budget.  The deep hybrid
    never needs more than one level -- this function is the analytic half of
    the depth ablation.
    """
    import math

    fresh_overhead = plain_bits + math.log2(2 * 6.0 * 3.2 * (2 * poly_degree + 1))
    per_level = plain_bits + math.log2(poly_degree) + 3.0
    return fresh_overhead + depth * per_level + margin_bits
