"""The ``Encrypted`` baseline: pure-HE CryptoNets-style inference.

Everything runs homomorphically on the untrusted edge server (paper
Section III-A / CryptoNets):

* convolution and FC: C x P multiplications + C + C additions;
* activation: the Square polynomial substitute (a real ciphertext-ciphertext
  multiplication), followed by relinearization with TTP-issued keys;
* pooling: the division-free scaled mean-pool (window sum);
* nothing is ever decrypted server-side.

Accuracy consequence: the model must have been *trained* with these
substitutes (`repro.nn.model.cryptonets_cnn`), and the plaintext modulus
must absorb squared magnitudes -- the accuracy/cost trade-off the hybrid
framework removes.
"""

from __future__ import annotations

import numpy as np

from repro.core import heops
from repro.core.results import InferenceResult, stages_from_trace
from repro.graph import executor as graph_executor
from repro.errors import PipelineError
from repro.faults import run_with_kernel_degradation
from repro.he import kernels
from repro.he.context import Context
from repro.he.decryptor import Decryptor
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.he.evaluator import Evaluator, OperationCounter
from repro.he.keys import KeyGenerator
from repro.he.params import EncryptionParams
from repro.nn.quantize import QuantizedCNN
from repro.obs import Tracer
from repro.sgx.clock import SimClock


class CryptonetsPipeline:
    """Pure-HE inference (the paper's ``Encrypted`` comparison scheme).

    The pipeline plays both user (encrypt/decrypt) and server (evaluate)
    roles so benchmarks can time each stage; key *distribution* is a
    separate concern covered by :mod:`repro.core.keyflow` -- note that this
    baseline structurally needs the TTP for its relinearization keys.

    Args:
        quantized: integer model with ``activation="square"``.
        params: FV parameters; must fit ``quantized.required_plain_modulus()``.
        seed: reproducible key/encryption randomness.
        clock: shared simulated clock (a fresh one by default).
    """

    scheme = "Encrypted"

    def __init__(
        self,
        quantized: QuantizedCNN,
        params: EncryptionParams,
        seed: int | None = None,
        clock: SimClock | None = None,
    ) -> None:
        if quantized.activation != "square":
            raise PipelineError(
                "the pure-HE baseline cannot evaluate a non-polynomial "
                "activation; quantize a cryptonets_cnn model (Square + "
                "ScaledMeanPool2D) instead"
            )
        if not quantized.fits_plain_modulus(params.plain_modulus):
            raise PipelineError(
                f"plain_modulus {params.plain_modulus} cannot hold the squared "
                f"intermediates (need >= {quantized.required_plain_modulus()})"
            )
        self.quantized = quantized
        self.context = Context(params)
        self.clock = clock if clock is not None else SimClock()
        rng = np.random.default_rng(seed)
        keygen = KeyGenerator(self.context, rng)
        self._keys = keygen.generate()
        self._relin_keys = keygen.relin_keys(self._keys.secret)
        self.counter = OperationCounter()
        self.tracer = Tracer(self.clock, counter=self.counter)
        self.evaluator = Evaluator(self.context, self.counter)
        self.encoder = ScalarEncoder(self.context)
        self.encryptor = Encryptor(self.context, self._keys.public, rng)
        self.decryptor = Decryptor(self.context, self._keys.secret)
        # Weight encoding happens once, ahead of service (Section IV-B).
        encoded = heops.encode_model_weights(self.evaluator, self.encoder, quantized)
        self.conv_weights = encoded.conv
        self.dense_weights = encoded.dense

    def encrypt_images(self, images: np.ndarray):
        """User side: one ciphertext per pixel (the paper's non-SIMD encoding)."""
        pixels = self.quantized.quantize_images(images)
        return self.encryptor.encrypt(self.encoder.encode(pixels))

    def infer(self, images: np.ndarray) -> InferenceResult:
        """One inference; degrades FUSED -> REFERENCE kernels and retries
        once if the runtime equivalence guard trips (identical logits)."""
        return run_with_kernel_degradation(
            self.tracer, self.scheme, lambda: self._infer_once(images)
        )

    def _infer_once(self, images: np.ndarray) -> InferenceResult:
        graph, report = graph_executor.compiled_for(self, "cryptonets")
        self.graph_report = report
        with self.tracer.span(
            self.scheme,
            kind="pipeline",
            kernel_mode=kernels.active().mode_name,
            graph_opt=report.label,
            batch=int(images.shape[0]),
        ) as trace:
            logits, budget, logits_ct = graph_executor.run(self, graph, images)

        return InferenceResult(
            logits=logits,
            stages=stages_from_trace(trace),
            scheme=self.scheme,
            noise_budget_bits=budget,
            op_counts=dict(self.counter.counts),
            trace=trace,
            logits_ct=logits_ct,
        )
