"""Noise management: relinearization vs SGX refresh (paper Table V, §IV-E).

After a ciphertext-ciphertext multiplication, the evaluator must shrink the
size-3 ciphertext and tame its noise.  Two routes:

* **relinearization** -- pure HE, needs evaluation keys from the key
  authority, reduces size but the multiplication noise *remains*;
* **SGX refresh** -- decrypt/re-encrypt inside the enclave: noise drops to
  fresh level and no evaluation keys exist at all, at the price of enclave
  crossings.  Batching many ciphertexts into one crossing amortizes the
  entry/exit and key-load cost (the paper's 95.55 ms single vs 23.429 ms
  amortized figure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PipelineError
from repro.he.context import Ciphertext
from repro.he.evaluator import Evaluator
from repro.he.keys import RelinKeys
from repro.sgx.clock import ClockWindow
from repro.sgx.enclave import EnclaveHandle


@dataclass
class RefreshOutcome:
    """One refreshed ciphertext plus bookkeeping for Table V."""

    ciphertext: Ciphertext
    method: str
    elapsed_s: float
    per_item_s: float


def relinearize_refresh(
    evaluator: Evaluator,
    ct: Ciphertext,
    relin_keys: RelinKeys,
    clock,
) -> RefreshOutcome:
    """The pure-HE route: relinearize with evaluation keys."""
    window = ClockWindow(clock)
    with clock.measure_real():
        out = evaluator.relinearize(ct, relin_keys)
    return RefreshOutcome(
        ciphertext=out,
        method="relinearization",
        elapsed_s=window.elapsed_s,
        per_item_s=window.elapsed_s / max(1, ct.batch_count),
    )


def sgx_refresh(
    enclave: EnclaveHandle,
    ct: Ciphertext,
) -> RefreshOutcome:
    """The enclave route: one crossing, decrypt/re-encrypt inside."""
    clock = enclave.platform.clock
    window = ClockWindow(clock)
    out = enclave.ecall("refresh", ct)
    return RefreshOutcome(
        ciphertext=out,
        method="sgx_refresh",
        elapsed_s=window.elapsed_s,
        per_item_s=window.elapsed_s / max(1, ct.batch_count),
    )


def sgx_refresh_one_by_one(
    enclave: EnclaveHandle,
    ct: Ciphertext,
) -> RefreshOutcome:
    """The unbatched strawman: one crossing *per ciphertext* (Table V's
    95.55 ms row)."""
    if not ct.batch_shape:
        return sgx_refresh(enclave, ct)
    clock = enclave.platform.clock
    window = ClockWindow(clock)
    flat = ct.reshape(-1)
    pieces = [
        enclave.ecall("refresh", flat[i : i + 1]) for i in range(flat.batch_shape[0])
    ]
    data = np.concatenate([p.data for p in pieces], axis=0)
    # Refreshed ciphertexts are size 2 even when the input was size 3.
    out = Ciphertext(ct.context, data.reshape(*ct.batch_shape, *pieces[0].data.shape[-3:]),
                     is_ntt=pieces[0].is_ntt)
    return RefreshOutcome(
        ciphertext=out,
        method="sgx_refresh_single",
        elapsed_s=window.elapsed_s,
        per_item_s=window.elapsed_s / max(1, ct.batch_count),
    )


@dataclass(frozen=True)
class RefreshPolicy:
    """Decides the refresh route for a given batch size.

    With the paper's cost model, relinearization wins for lone ciphertexts
    while batched SGX refresh wins once the crossing is amortized over
    ``min_batch_for_sgx`` or more ciphertexts *and* the circuit benefits
    from the noise reset.  ``prefer_no_keys=True`` forces the SGX route
    regardless (the framework's no-TTP deployment mode).
    """

    min_batch_for_sgx: int = 4
    prefer_no_keys: bool = True

    def choose(self, batch_count: int, relin_keys_available: bool) -> str:
        if not relin_keys_available:
            return "sgx_refresh"
        if self.prefer_no_keys:
            return "sgx_refresh"
        if batch_count >= self.min_batch_for_sgx:
            return "sgx_refresh"
        return "relinearization"


def refresh(
    evaluator: Evaluator,
    ct: Ciphertext,
    enclave: EnclaveHandle | None = None,
    relin_keys: RelinKeys | None = None,
    policy: RefreshPolicy | None = None,
) -> RefreshOutcome:
    """Policy-driven refresh: route to the enclave or to relinearization.

    Raises:
        PipelineError: neither an enclave nor relinearization keys supplied.
    """
    policy = policy if policy is not None else RefreshPolicy()
    if enclave is None and relin_keys is None:
        raise PipelineError("refresh needs an enclave or relinearization keys")
    if enclave is None:
        choice = "relinearization"
    elif relin_keys is None:
        choice = "sgx_refresh"
    else:
        choice = policy.choose(ct.batch_count, relin_keys_available=True)
    if choice == "relinearization":
        return relinearize_refresh(evaluator, ct, relin_keys, _clock_of(enclave))
    return sgx_refresh(enclave, ct)


def _clock_of(enclave: EnclaveHandle | None):
    from repro.sgx.clock import SimClock

    if enclave is not None:
        return enclave.platform.clock
    return SimClock()
