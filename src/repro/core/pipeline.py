"""The unified pipeline API: one protocol, one factory.

The five inference pipelines (plaintext reference, pure-HE CryptoNets
baseline, hybrid HE+SGX, slot-packed SIMD hybrid, multi-block deep hybrid)
grew the same surface by convention -- a ``scheme`` label, ``infer(images)``
returning an :class:`~repro.core.results.InferenceResult`, and
``encrypt_images``.  :class:`InferencePipeline` makes that contract explicit
(FHEON-style: a configurable, uniform API is what lets optimizations like the
serving scheduler land once instead of being forked per variant), and
:func:`build_pipeline` is the single entry point that maps a scheme name to a
configured pipeline, auto-sizing FV parameters when none are supplied.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.core.config import parameters_for_pipeline
from repro.core.cryptonets import CryptonetsPipeline
from repro.core.deep import DeepHybridPipeline
from repro.core.hybrid import MODES, HybridPipeline
from repro.core.plaintext import PlaintextPipeline
from repro.core.results import InferenceResult
from repro.core.simd import SimdHybridPipeline
from repro.errors import PipelineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.he.params import EncryptionParams


@runtime_checkable
class InferencePipeline(Protocol):
    """What every inference pipeline exposes.

    ``encrypt_images`` is the user-side step (for the plaintext reference it
    degenerates to quantization); ``infer`` runs the full pipeline on raw
    images and reports per-stage timing.  Code written against this protocol
    runs unchanged over any scheme -- see ``examples/quickstart.py``.
    """

    scheme: str

    def infer(self, images: np.ndarray) -> InferenceResult:
        ...

    def encrypt_images(self, images: np.ndarray):
        ...


#: Canonical scheme names (values) and their accepted aliases (keys).
SCHEME_ALIASES = {
    "plaintext": "plaintext",
    "cryptonets": "cryptonets",
    "encrypted": "cryptonets",
    "hybrid": "hybrid",
    "encryptsgx": "hybrid",
    "simd": "simd",
    "encryptsgx-simd": "simd",
    "deep": "deep",
}

#: Keyword options each scheme's constructor understands.
_SCHEME_OPTS = {
    "plaintext": {"clock"},
    "cryptonets": {"seed", "clock"},
    "hybrid": {"platform", "mode", "seed"},
    "simd": {"platform", "seed"},
    "deep": {"platform", "seed"},
}


def resolve_scheme(scheme: str) -> str:
    """Normalize a scheme name or alias to its canonical form."""
    canonical = SCHEME_ALIASES.get(scheme.strip().lower())
    if canonical is None:
        raise PipelineError(
            f"unknown pipeline scheme {scheme!r}; expected one of "
            f"{sorted(set(SCHEME_ALIASES))}"
        )
    return canonical


def build_pipeline(
    scheme: str,
    quantized,
    params: "EncryptionParams | None" = None,
    *,
    poly_degree: int = 1024,
    **opts,
) -> InferencePipeline:
    """Construct a configured pipeline for ``scheme``.

    Args:
        scheme: canonical name or alias (case-insensitive) from
            :data:`SCHEME_ALIASES` -- ``plaintext``, ``cryptonets`` /
            ``encrypted``, ``hybrid`` / ``encryptsgx``, ``simd``, ``deep``.
        quantized: the integer model (a
            :class:`~repro.nn.quantize.QuantizedCNN`, or a
            :class:`~repro.nn.deep.DeepQuantizedCNN` for ``deep``).
        params: FV parameters; when omitted, auto-sized with
            :func:`~repro.core.config.parameters_for_pipeline` at
            ``poly_degree`` (with a batching-capable plaintext modulus for
            ``simd``).
        poly_degree: degree used for auto-sizing (ignored when ``params`` is
            given).
        **opts: scheme-specific options -- ``mode`` (hybrid), ``platform``
            (hybrid/simd/deep), ``seed``, ``clock`` (plaintext/cryptonets).

    Raises:
        PipelineError: unknown scheme, an option the scheme does not take,
            or a model/parameter mismatch surfaced by the pipeline itself.
    """
    canonical = resolve_scheme(scheme)
    allowed = _SCHEME_OPTS[canonical]
    unknown = set(opts) - allowed
    if unknown:
        raise PipelineError(
            f"scheme {canonical!r} does not take option(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    if canonical == "hybrid" and opts.get("mode", "batched") not in MODES:
        raise PipelineError(
            f"mode must be one of {MODES}, got {opts['mode']!r}"
        )
    if canonical == "plaintext":
        return PlaintextPipeline(quantized, clock=opts.get("clock"))
    if params is None:
        params = parameters_for_pipeline(
            quantized, poly_degree, batching=(canonical == "simd")
        )
    if canonical == "cryptonets":
        return CryptonetsPipeline(quantized, params, **opts)
    if canonical == "hybrid":
        return HybridPipeline(quantized, params, **opts)
    if canonical == "simd":
        return SimdHybridPipeline(quantized, params, **opts)
    return DeepHybridPipeline(quantized, params, **opts)
