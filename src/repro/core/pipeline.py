"""The unified pipeline API: one protocol, one factory.

The five inference pipelines (plaintext reference, pure-HE CryptoNets
baseline, hybrid HE+SGX, slot-packed SIMD hybrid, multi-block deep hybrid)
grew the same surface by convention -- a ``scheme`` label, ``infer(images)``
returning an :class:`~repro.core.results.InferenceResult`, and
``encrypt_images``.  :class:`InferencePipeline` makes that contract explicit
(FHEON-style: a configurable, uniform API is what lets optimizations like the
serving scheduler land once instead of being forked per variant), and
:func:`build_pipeline` is the single entry point that maps a scheme name to a
configured pipeline, auto-sizing FV parameters when none are supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.core.config import parameters_for_pipeline
from repro.core.cryptonets import CryptonetsPipeline
from repro.core.deep import DeepHybridPipeline
from repro.core.hybrid import MODES, HybridPipeline
from repro.core.plaintext import PlaintextPipeline
from repro.core.results import InferenceResult
from repro.core.simd import SimdHybridPipeline
from repro.errors import PipelineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.he.params import EncryptionParams
    from repro.serve.scheduler import ServeConfig


@runtime_checkable
class InferencePipeline(Protocol):
    """What every inference pipeline exposes.

    ``encrypt_images`` is the user-side step (for the plaintext reference it
    degenerates to quantization); ``infer`` runs the full pipeline on raw
    images and reports per-stage timing.  Code written against this protocol
    runs unchanged over any scheme -- see ``examples/quickstart.py``.
    """

    scheme: str

    def infer(self, images: np.ndarray) -> InferenceResult:
        ...

    def encrypt_images(self, images: np.ndarray):
        ...


#: Canonical scheme names (values) and their accepted aliases (keys).
SCHEME_ALIASES = {
    "plaintext": "plaintext",
    "cryptonets": "cryptonets",
    "encrypted": "cryptonets",
    "hybrid": "hybrid",
    "encryptsgx": "hybrid",
    "simd": "simd",
    "encryptsgx-simd": "simd",
    "deep": "deep",
}

#: Keyword options each scheme's constructor understands.
_SCHEME_OPTS = {
    "plaintext": {"clock"},
    "cryptonets": {"seed", "clock"},
    "hybrid": {"platform", "mode", "seed"},
    "simd": {"platform", "seed"},
    "deep": {"platform", "seed"},
}


def resolve_scheme(scheme: str) -> str:
    """Normalize a scheme name or alias to its canonical form."""
    canonical = SCHEME_ALIASES.get(scheme.strip().lower())
    if canonical is None:
        raise PipelineError(
            f"unknown pipeline scheme {scheme!r}; expected one of "
            f"{sorted(set(SCHEME_ALIASES))}"
        )
    return canonical


#: Kernel profile names a :class:`PipelineSpec` accepts.
KERNEL_PROFILES = ("fused", "reference")


@dataclass(frozen=True)
class PipelineSpec:
    """Declarative description of a pipeline / serving deployment.

    One frozen value captures everything :func:`build_pipeline`,
    ``EdgeServer.from_spec`` and the benchmarks previously spread over
    positional arguments and ad-hoc keywords: the scheme, how to size (or
    which exact) FV parameters, the hot-path kernel profile, the enclave
    fleet size, and the serving queue bounds.  Being frozen, a spec can sit
    in a bench baseline or a CLI flag table and be reused without aliasing.

    Attributes:
        scheme: canonical name or alias from :data:`SCHEME_ALIASES`
            (normalized at construction).
        params: exact FV parameters; when None they are auto-sized from the
            quantized model at build time.
        poly_degree: degree for auto-sizing (ignored when ``params`` given).
        batching: force a batching-capable plaintext modulus when
            auto-sizing; None picks the scheme default (on for ``simd`` and
            whenever a serving knob -- fleet size or queue bound -- is set).
        kernel_profile: ``"fused"`` or ``"reference"`` to install that
            hot-path profile at build time; None leaves the process profile
            untouched.
        workers: flush-execution worker processes to install process-wide
            at build time (``repro.he.parallel``); ``1`` forces the
            in-process path, ``None`` leaves the active setting (the
            ``REPRO_WORKERS`` environment default) untouched.  Results are
            byte-identical at any width.
        graph_optimizer: graph-optimizer level (``"off"``, ``"safe"``,
            ``"aggressive"``) to install process-wide at build time
            (``repro.graph.optimizer``); ``None`` leaves the active setting
            (the ``REPRO_GRAPH_OPT`` environment default) untouched.
            Optimized execution is bit-identical to ``"off"`` -- same
            logits, same serialized ciphertext bytes, same op tallies.
        fleet_size: enclave replicas for ``EdgeServer.from_spec`` (>= 1).
        max_queue_depth / max_batch / window_s: scheduler queue bounds; any
            set value flows into the server's
            :class:`~repro.serve.ServeConfig`.
        options: extra scheme-specific constructor options (``mode``,
            ``platform``, ``seed``, ``clock``), merged under explicit
            keywords passed to :func:`build_pipeline`.
    """

    scheme: str = "hybrid"
    params: "EncryptionParams | None" = None
    poly_degree: int = 1024
    batching: bool | None = None
    kernel_profile: str | None = None
    workers: int | None = None
    graph_optimizer: str | None = None
    fleet_size: int = 1
    max_queue_depth: int | None = None
    max_batch: int | None = None
    window_s: float | None = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheme", resolve_scheme(self.scheme))
        if self.poly_degree < 2:
            raise PipelineError("poly_degree must be >= 2")
        if self.kernel_profile is not None and self.kernel_profile not in KERNEL_PROFILES:
            raise PipelineError(
                f"kernel_profile must be one of {KERNEL_PROFILES}, "
                f"got {self.kernel_profile!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise PipelineError("workers must be >= 1 (or None to inherit)")
        if self.graph_optimizer is not None:
            from repro.graph import optimizer as graph_optimizer

            if self.graph_optimizer not in graph_optimizer.LEVELS:
                raise PipelineError(
                    f"graph_optimizer must be one of {graph_optimizer.LEVELS}, "
                    f"got {self.graph_optimizer!r}"
                )
        if self.fleet_size < 1:
            raise PipelineError("fleet_size must be >= 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise PipelineError("max_queue_depth must be >= 1")
        if self.max_batch is not None and self.max_batch < 1:
            raise PipelineError("max_batch must be >= 1")
        if self.window_s is not None and self.window_s < 0:
            raise PipelineError("window_s must be >= 0")

    def wants_batching(self) -> bool:
        """Whether auto-sized parameters should support CRT slot packing."""
        if self.batching is not None:
            return self.batching
        serving = (
            self.fleet_size > 1
            or self.max_queue_depth is not None
            or self.max_batch is not None
            or self.window_s is not None
        )
        return self.scheme == "simd" or serving

    def resolve_params(self, quantized=None) -> "EncryptionParams":
        """The spec's exact parameters, or auto-sized ones for ``quantized``."""
        if self.params is not None:
            return self.params
        if quantized is None:
            raise PipelineError(
                "this spec carries no explicit params; pass the quantized "
                "model to size parameters against"
            )
        return parameters_for_pipeline(
            quantized, self.poly_degree, batching=self.wants_batching()
        )

    def apply_kernel_profile(self) -> None:
        """Install the spec's kernel profile process-wide (no-op when None)."""
        if self.kernel_profile is None:
            return
        from repro.he import kernels

        kernels.configure(
            kernels.FUSED if self.kernel_profile == "fused" else kernels.REFERENCE
        )

    def apply_workers(self) -> None:
        """Install the spec's worker count process-wide (no-op when None)."""
        if self.workers is None:
            return
        from repro.he import parallel

        parallel.configure(self.workers)

    def apply_graph_optimizer(self) -> None:
        """Install the spec's graph-optimizer level process-wide (no-op when
        None)."""
        if self.graph_optimizer is None:
            return
        from repro.graph import optimizer as graph_optimizer

        graph_optimizer.configure(self.graph_optimizer)

    def serve_config(self) -> "ServeConfig | None":
        """A :class:`~repro.serve.ServeConfig` from the spec's queue bounds
        (None when no bound is set, letting server defaults apply)."""
        if (
            self.max_queue_depth is None
            and self.max_batch is None
            and self.window_s is None
        ):
            return None
        from repro.serve.scheduler import ServeConfig

        kwargs: dict[str, Any] = {}
        if self.max_queue_depth is not None:
            kwargs["max_queue_depth"] = self.max_queue_depth
        if self.max_batch is not None:
            kwargs["max_batch"] = self.max_batch
        if self.window_s is not None:
            kwargs["window_s"] = self.window_s
        return ServeConfig(**kwargs)

    def build(self, quantized, **opts) -> InferencePipeline:
        """Shorthand for ``build_pipeline(self, quantized, **opts)``."""
        return build_pipeline(self, quantized, **opts)


def build_pipeline(
    scheme: "str | PipelineSpec",
    quantized,
    params: "EncryptionParams | None" = None,
    *,
    poly_degree: int = 1024,
    **opts,
) -> InferencePipeline:
    """Construct a configured pipeline for ``scheme``.

    Args:
        scheme: either a canonical name / alias (case-insensitive) from
            :data:`SCHEME_ALIASES` -- ``plaintext``, ``cryptonets`` /
            ``encrypted``, ``hybrid`` / ``encryptsgx``, ``simd``, ``deep``
            -- or a declarative :class:`PipelineSpec`, whose parameters,
            kernel profile, batching choice and stored ``options`` all
            apply (explicit ``params`` / ``**opts`` here still win).
        quantized: the integer model (a
            :class:`~repro.nn.quantize.QuantizedCNN`, or a
            :class:`~repro.nn.deep.DeepQuantizedCNN` for ``deep``).
        params: FV parameters; when omitted, auto-sized with
            :func:`~repro.core.config.parameters_for_pipeline` at
            ``poly_degree`` (with a batching-capable plaintext modulus for
            ``simd``).
        poly_degree: degree used for auto-sizing (ignored when ``params`` is
            given).
        **opts: scheme-specific options -- ``mode`` (hybrid), ``platform``
            (hybrid/simd/deep), ``seed``, ``clock`` (plaintext/cryptonets)
            -- plus the process-wide knobs ``workers`` and
            ``graph_optimizer``, applied exactly as the matching
            :class:`PipelineSpec` attributes would be.

    Raises:
        PipelineError: unknown scheme, an option the scheme does not take,
            or a model/parameter mismatch surfaced by the pipeline itself.
    """
    if isinstance(scheme, PipelineSpec):
        spec = scheme
        spec.apply_kernel_profile()
        spec.apply_workers()
        spec.apply_graph_optimizer()
        canonical = spec.scheme
        batching = spec.wants_batching()
        poly_degree = spec.poly_degree
        if params is None:
            params = spec.params
        merged = dict(spec.options)
        merged.update(opts)
        opts = merged
    else:
        canonical = resolve_scheme(scheme)
        batching = canonical == "simd"
    workers = opts.pop("workers", None)
    graph_level = opts.pop("graph_optimizer", None)
    if workers is not None or graph_level is not None:
        # Route the process-wide knobs through a throwaway spec so the
        # kwarg form shares PipelineSpec's validation and application.
        knobs = PipelineSpec(
            scheme=canonical, workers=workers, graph_optimizer=graph_level
        )
        knobs.apply_workers()
        knobs.apply_graph_optimizer()
    allowed = _SCHEME_OPTS[canonical]
    unknown = set(opts) - allowed
    if unknown:
        raise PipelineError(
            f"scheme {canonical!r} does not take option(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    if canonical == "hybrid" and opts.get("mode", "batched") not in MODES:
        raise PipelineError(
            f"mode must be one of {MODES}, got {opts['mode']!r}"
        )
    if canonical == "plaintext":
        return PlaintextPipeline(quantized, clock=opts.get("clock"))
    if params is None:
        params = parameters_for_pipeline(quantized, poly_degree, batching=batching)
    if canonical == "cryptonets":
        return CryptonetsPipeline(quantized, params, **opts)
    if canonical == "hybrid":
        return HybridPipeline(quantized, params, **opts)
    if canonical == "simd":
        return SimdHybridPipeline(quantized, params, **opts)
    return DeepHybridPipeline(quantized, params, **opts)
