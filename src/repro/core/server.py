"""Edge-server facade: the deployable face of the framework.

Ties the pieces together the way the paper's deployment story does
(Sections IV + VII): one SGX-capable edge node hosts an inference enclave
that is simultaneously key authority and plaintext co-processor; quantized
models are provisioned once (optionally persisted as *sealed* blobs so a
restarted enclave of the same identity can recover them from untrusted
storage); users enroll via remote attestation; and inference requests are
routed to the hybrid pipeline -- slot-packed when the parameters allow it
and the caller asks for throughput.

This is the API a downstream integrator would embed::

    server = EdgeServer(params, seed=7)
    server.provision_model("digits", quantized)
    session = server.enroll_user(entropy=os.urandom(32), verifier=verifier)
    response = server.infer("digits", session.encrypt("digits", images))
    predictions = session.decrypt(response)

For throughput, ``server.infer(name, ct, pack=True)`` routes through the
:class:`~repro.serve.RequestScheduler`, which coalesces concurrent
single-image requests into one CRT-slot-packed pipeline pass; load
generators drive the scheduler directly via ``server.scheduler.submit`` /
``pump`` / ``drain`` (see ``examples/multi_user_service.py`` for the full
runnable flow).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core import heops
from repro.core.enclave_service import InferenceEnclave
from repro.core.keyflow import SgxKeyDistribution, UserClient
from repro.core.results import InferenceResult, stages_from_trace
from repro.errors import PipelineError, SealingError, UnknownModelError
from repro.faults import EnclaveSupervisor, run_with_kernel_degradation
from repro.he import serialize as he_serialize
from repro.he.context import Ciphertext, Context
from repro.he.decryptor import Decryptor, decrypt_scalar_values
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.he.evaluator import Evaluator, OperationCounter
from repro.he.params import EncryptionParams
from repro.nn.quantize import QuantizedCNN
from repro.obs import metrics
from repro.sgx.attestation import AttestationVerificationService, QuotingService
from repro.sgx.enclave import SgxPlatform
from repro.sgx.sealing import SealedBlob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve import RequestScheduler, ServeConfig


@dataclass
class UserSession:
    """A user's view after successful enrollment: their own crypto endpoints."""

    context: Context
    encoder: ScalarEncoder
    encryptor: Encryptor
    decryptor: Decryptor
    quantized_by_model: dict

    def encrypt(self, model_name: str, images: np.ndarray) -> Ciphertext:
        quantized = self._quantized(model_name)
        pixels = quantized.quantize_images(images)
        return self.encryptor.encrypt(self.encoder.encode(pixels))

    def decrypt(self, result: "ServedResult") -> np.ndarray:
        return self.decrypt_logits(result).argmax(axis=1)

    def decrypt_logits(self, result: "ServedResult") -> np.ndarray:
        return decrypt_scalar_values(self.decryptor, self.encoder, result.logits_ct)

    def _quantized(self, model_name: str) -> QuantizedCNN:
        quantized = self.quantized_by_model.get(model_name)
        if quantized is None:
            raise UnknownModelError(f"unknown model {model_name!r}")
        return quantized


@dataclass
class ServedResult:
    """What the server returns: *encrypted* logits plus timing metadata.

    Requests served through the packing scheduler additionally carry their
    serving metadata: ``request_id``, the total ``packed_batch`` they shared
    slots with, and the simulated seconds spent coalescing
    (``queue_wait_s``).  Direct ``infer`` calls leave these at defaults.
    """

    logits_ct: Ciphertext
    timing: InferenceResult
    request_id: int | None = None
    packed_batch: int = 0
    queue_wait_s: float = 0.0


def _pack_model_payload(name: str, quantized: QuantizedCNN) -> bytes:
    """Serialize a named model pickle-free: JSON metadata header (scalars)
    plus the library's int64 wire format for the weight arrays, so that
    nothing executable ever round-trips through sealed storage."""
    meta = json.dumps(
        {
            "name": name,
            "input_scale": int(quantized.input_scale),
            "conv_weight_scale": float(quantized.conv_weight_scale),
            "dense_weight_scale": float(quantized.dense_weight_scale),
            "act_scale": int(quantized.act_scale),
            "activation": quantized.activation,
            "pool": quantized.pool,
            "pool_window": int(quantized.pool_window),
            "stride": int(quantized.stride),
        }
    ).encode("utf-8")
    arrays = he_serialize.serialize_int64_arrays(
        [
            quantized.conv_weight,
            quantized.conv_bias,
            quantized.dense_weight,
            quantized.dense_bias,
        ]
    )
    return struct.pack("<I", len(meta)) + meta + arrays


def _unpack_model_payload(payload: bytes) -> tuple[str, QuantizedCNN]:
    (meta_len,) = struct.unpack_from("<I", payload, 0)
    meta = json.loads(payload[4 : 4 + meta_len].decode("utf-8"))
    arrays, _ = he_serialize.deserialize_int64_arrays(payload[4 + meta_len :])
    quantized = QuantizedCNN(
        conv_weight=arrays[0],
        conv_bias=arrays[1],
        dense_weight=arrays[2],
        dense_bias=arrays[3],
        input_scale=meta["input_scale"],
        conv_weight_scale=meta["conv_weight_scale"],
        dense_weight_scale=meta["dense_weight_scale"],
        act_scale=meta["act_scale"],
        activation=meta["activation"],
        pool=meta["pool"],
        pool_window=meta["pool_window"],
        stride=meta["stride"],
    )
    return meta["name"], quantized


class EdgeServer:
    """One SGX-capable edge node running the hybrid framework.

    Args:
        params: FV parameter set all hosted models share.
        platform: simulated SGX machine (fresh by default).
        seed: reproducible randomness for keygen and encryption.
        serve_config: policy for the packing scheduler (defaults apply when
            omitted); the scheduler itself is created lazily on first use.
    """

    def __init__(
        self,
        params: EncryptionParams,
        platform: SgxPlatform | None = None,
        seed: int | None = None,
        serve_config: "ServeConfig | None" = None,
    ) -> None:
        self.params = params
        self.platform = platform if platform is not None else SgxPlatform()
        self.context = Context(params)
        self.enclave = EnclaveSupervisor(self.platform, InferenceEnclave, params, seed)
        self.enclave.ecall("generate_keys")
        self.quoting = QuotingService(self.platform)
        self._distribution = SgxKeyDistribution(
            platform=self.platform, enclave=self.enclave, quoting=self.quoting
        )
        self.counter = OperationCounter()
        self.evaluator = Evaluator(self.context, self.counter)
        self.encoder = ScalarEncoder(self.context)
        self._models: dict[str, QuantizedCNN] = {}
        self._encoded: dict[str, heops.EncodedModel] = {}
        self._serve_config = serve_config
        self._scheduler: "RequestScheduler | None" = None

    # ------------------------------------------------------------------
    # model provisioning
    # ------------------------------------------------------------------
    def provision_model(self, name: str, quantized: QuantizedCNN) -> None:
        """Install a quantized model and pre-encode its weights (§IV-B)."""
        if quantized.activation == "square":
            raise PipelineError(
                "the edge server runs the hybrid framework; square-activation "
                "models belong to the pure-HE baseline"
            )
        if not quantized.fits_plain_modulus(self.params.plain_modulus):
            raise PipelineError(
                f"model {name!r} needs t >= {quantized.required_plain_modulus()}"
            )
        self._models[name] = quantized
        self._encoded[name] = heops.encode_model_weights(
            self.evaluator, self.encoder, quantized
        )
        registry = metrics.registry()
        if registry.enabled:
            from repro.he.noise import NoiseEstimator

            headroom_gauge = registry.gauge(
                "repro_he_noise_budget_bits",
                "Estimated remaining invariant-noise budget per encrypted "
                "layer (SGX refresh resets each layer to fresh noise).",
                ("layer", "model"),
            )
            estimator = NoiseEstimator(self.params)
            for layer, bits in estimator.layer_headroom(quantized).items():
                headroom_gauge.labels(model=name, layer=layer).set(bits)

    def seal_model(self, name: str) -> SealedBlob:
        """Persist a provisioned model as a sealed blob for untrusted storage.

        Only an enclave with the same MRENCLAVE on the same platform can
        recover it -- the paper's "deployed in the edge server securely"
        assumption made concrete.  The payload is pickle-free (JSON metadata
        plus the library's int64 wire format).
        """
        quantized = self._require_model(name)
        return self.enclave.seal(_pack_model_payload(name, quantized))

    def restore_model(self, blob: SealedBlob) -> str:
        """Unseal and re-provision a model (e.g. after an enclave restart).

        Raises:
            SealingError: the blob belongs to a different enclave/platform
                or was tampered with.
        """
        try:
            payload = self.enclave.unseal(blob)
        except SealingError:
            raise
        name, quantized = _unpack_model_payload(payload)
        self.provision_model(name, quantized)
        return name

    def models(self) -> list[str]:
        return sorted(self._models)

    def model(self, name: str) -> QuantizedCNN:
        """The provisioned quantized model, or :class:`UnknownModelError`."""
        return self._require_model(name)

    def encoded_model(self, name: str) -> heops.EncodedModel:
        """The pre-encoded HE weights for a provisioned model."""
        self._require_model(name)
        return self._encoded[name]

    # ------------------------------------------------------------------
    # user enrollment (Fig. 2 key delivery)
    # ------------------------------------------------------------------
    def enroll_user(
        self, entropy: bytes, verifier: AttestationVerificationService
    ) -> UserSession:
        """Run the attested key exchange for one user and hand back their
        session (the user-side object; in a real deployment this happens on
        the user's device)."""
        client = UserClient(
            params=self.params,
            verifier=verifier,
            expected_mrenclave=self.enclave.measurement.mrenclave,
            entropy=entropy,
        )
        quote, sealed = self._distribution.serve_exchange(client.begin_exchange())
        keys = client.complete_exchange(quote, sealed)
        context = Context(self.params)
        return UserSession(
            context=context,
            encoder=ScalarEncoder(context),
            encryptor=Encryptor(context, keys.public),
            decryptor=Decryptor(context, keys.secret),
            quantized_by_model=dict(self._models),
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> "RequestScheduler":
        """The server's packing scheduler (created lazily; requires a
        batching-capable parameter set)."""
        if self._scheduler is None:
            from repro.serve import RequestScheduler

            self._scheduler = RequestScheduler(self, self._serve_config)
        return self._scheduler

    def infer(
        self,
        model_name: str,
        ct: Ciphertext,
        *,
        pack: bool = False,
        deadline_ms: float | None = None,
    ) -> ServedResult:
        """Run the hybrid pipeline on encrypted pixels; logits stay encrypted.

        Args:
            model_name: a provisioned model.
            ct: scalar-encoded ``(B, C, H, W)`` pixel ciphertext from
                :meth:`UserSession.encrypt`.
            pack: route through the slot-packing scheduler.  This call stays
                synchronous (it drains the model's bucket if the submission
                did not already fill a batch); concurrent callers that
                submitted earlier ride the same flush and share its HE cost.
            deadline_ms: coalescing deadline in simulated milliseconds,
                recorded on the queued request (requires ``pack=True``).
                Only meaningful to load generators that also call
                ``scheduler.pump()``; the synchronous facade drains
                immediately.

        Note:
            The bare positional form ``infer(name, ct)`` runs the legacy
            one-request-per-pass path and remains supported for existing
            callers; new integrations that care about throughput should pass
            ``pack=True`` or drive :attr:`scheduler` directly.
        """
        if deadline_ms is not None and not pack:
            raise PipelineError("deadline_ms is only meaningful with pack=True")
        if pack:
            deadline_s = None if deadline_ms is None else deadline_ms / 1000.0
            response = self.scheduler.submit(model_name, ct, deadline_s=deadline_s)
            if not response.done():
                self.scheduler.drain(model_name)
            return response.result()

        return run_with_kernel_degradation(
            self.platform.tracer,
            "EdgeServer/EncryptSGX",
            lambda: self._infer_direct(model_name, ct),
        )

    def _infer_direct(self, model_name: str, ct: Ciphertext) -> ServedResult:
        quantized = self._require_model(model_name)
        encoded = self._encoded[model_name]
        tracer = self.platform.tracer

        def stage(name: str):
            return tracer.stage(
                name, counter=self.counter, side_channel=self.enclave.side_channel
            )

        with tracer.span(
            "EdgeServer/EncryptSGX",
            kind="pipeline",
            counter=self.counter,
            side_channel=self.enclave.side_channel,
            model=model_name,
            batch=int(ct.batch_shape[0]),
        ) as trace:
            with stage("conv"):
                conv = heops.he_conv2d(self.evaluator, self.encoder, ct, encoded.conv)

            with stage("sgx_activation_pool"):
                hidden = self.enclave.ecall(
                    "activation_pool",
                    conv,
                    quantized.conv_output_scale,
                    quantized.act_scale,
                    quantized.pool_window,
                    quantized.activation,
                    quantized.pool,
                )

            with stage("fc"):
                logits_ct = heops.he_dense(
                    self.evaluator, self.encoder, hidden, encoded.dense
                )

        timing = InferenceResult(
            logits=np.zeros((ct.batch_shape[0], encoded.dense.out_features)),
            stages=stages_from_trace(trace),
            scheme="EdgeServer/EncryptSGX",
            op_counts=dict(self.counter.counts),
            enclave_crossings=trace.crossings,
            trace=trace,
        )
        return ServedResult(logits_ct=logits_ct, timing=timing)

    def _require_model(self, name: str) -> QuantizedCNN:
        quantized = self._models.get(name)
        if quantized is None:
            raise UnknownModelError(
                f"unknown model {name!r}; provisioned: {self.models()}"
            )
        return quantized
