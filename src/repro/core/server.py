"""Edge-server facade: the deployable face of the framework.

Ties the pieces together the way the paper's deployment story does
(Sections IV + VII): one SGX-capable edge node hosts an inference enclave
that is simultaneously key authority and plaintext co-processor; quantized
models are provisioned once (optionally persisted as *sealed* blobs so a
restarted enclave of the same identity can recover them from untrusted
storage); users enroll via remote attestation; and inference requests are
routed to the hybrid pipeline -- slot-packed when the parameters allow it
and the caller asks for throughput.

This is the API a downstream integrator would embed::

    server = EdgeServer(params, seed=7)
    server.provision_model("digits", quantized)
    session = server.enroll_user(entropy=os.urandom(32), verifier=verifier)
    response = server.infer("digits", session.encrypt("digits", images))
    predictions = session.decrypt(response)

(see ``examples/multi_user_service.py`` for the full runnable flow).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from repro.core import heops
from repro.core.enclave_service import InferenceEnclave
from repro.core.keyflow import SgxKeyDistribution, UserClient
from repro.core.results import InferenceResult, stages_from_trace
from repro.errors import PipelineError, SealingError
from repro.he.context import Ciphertext, Context
from repro.he.decryptor import Decryptor
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.he.evaluator import Evaluator, OperationCounter
from repro.he.params import EncryptionParams
from repro.nn.quantize import QuantizedCNN
from repro.sgx.attestation import AttestationVerificationService, QuotingService
from repro.sgx.enclave import SgxPlatform
from repro.sgx.sealing import SealedBlob


@dataclass
class UserSession:
    """A user's view after successful enrollment: their own crypto endpoints."""

    context: Context
    encoder: ScalarEncoder
    encryptor: Encryptor
    decryptor: Decryptor
    quantized_by_model: dict

    def encrypt(self, model_name: str, images: np.ndarray) -> Ciphertext:
        quantized = self._quantized(model_name)
        pixels = quantized.quantize_images(images)
        return self.encryptor.encrypt(self.encoder.encode(pixels))

    def decrypt(self, result: "ServedResult") -> np.ndarray:
        logits = self.encoder.decode(self.decryptor.decrypt(result.logits_ct))
        return logits.argmax(axis=1)

    def decrypt_logits(self, result: "ServedResult") -> np.ndarray:
        return self.encoder.decode(self.decryptor.decrypt(result.logits_ct))

    def _quantized(self, model_name: str) -> QuantizedCNN:
        quantized = self.quantized_by_model.get(model_name)
        if quantized is None:
            raise PipelineError(f"unknown model {model_name!r}")
        return quantized


@dataclass
class ServedResult:
    """What the server returns: *encrypted* logits plus timing metadata."""

    logits_ct: Ciphertext
    timing: InferenceResult


class EdgeServer:
    """One SGX-capable edge node running the hybrid framework.

    Args:
        params: FV parameter set all hosted models share.
        platform: simulated SGX machine (fresh by default).
        seed: reproducible randomness for keygen and encryption.
    """

    def __init__(
        self,
        params: EncryptionParams,
        platform: SgxPlatform | None = None,
        seed: int | None = None,
    ) -> None:
        self.params = params
        self.platform = platform if platform is not None else SgxPlatform()
        self.context = Context(params)
        self.enclave = self.platform.load_enclave(InferenceEnclave, params, seed)
        self.enclave.ecall("generate_keys")
        self.quoting = QuotingService(self.platform)
        self._distribution = SgxKeyDistribution(
            platform=self.platform, enclave=self.enclave, quoting=self.quoting
        )
        self.counter = OperationCounter()
        self.evaluator = Evaluator(self.context, self.counter)
        self.encoder = ScalarEncoder(self.context)
        self._models: dict[str, QuantizedCNN] = {}
        self._encoded: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # model provisioning
    # ------------------------------------------------------------------
    def provision_model(self, name: str, quantized: QuantizedCNN) -> None:
        """Install a quantized model and pre-encode its weights (§IV-B)."""
        if quantized.activation == "square":
            raise PipelineError(
                "the edge server runs the hybrid framework; square-activation "
                "models belong to the pure-HE baseline"
            )
        if not quantized.fits_plain_modulus(self.params.plain_modulus):
            raise PipelineError(
                f"model {name!r} needs t >= {quantized.required_plain_modulus()}"
            )
        conv = heops.encode_conv_weights(
            self.evaluator, self.encoder, quantized.conv_weight,
            quantized.conv_bias, quantized.stride,
        )
        dense = heops.encode_dense_weights(
            self.evaluator, self.encoder, quantized.dense_weight, quantized.dense_bias
        )
        self._models[name] = quantized
        self._encoded[name] = (conv, dense)

    def seal_model(self, name: str) -> SealedBlob:
        """Persist a provisioned model as a sealed blob for untrusted storage.

        Only an enclave with the same MRENCLAVE on the same platform can
        recover it -- the paper's "deployed in the edge server securely"
        assumption made concrete.
        """
        quantized = self._require_model(name)
        payload = pickle.dumps((name, quantized))
        return self.enclave._instance.seal(payload)

    def restore_model(self, blob: SealedBlob) -> str:
        """Unseal and re-provision a model (e.g. after an enclave restart).

        Raises:
            SealingError: the blob belongs to a different enclave/platform
                or was tampered with.
        """
        try:
            payload = self.enclave._instance.unseal(blob)
        except SealingError:
            raise
        name, quantized = pickle.loads(payload)
        self.provision_model(name, quantized)
        return name

    def models(self) -> list[str]:
        return sorted(self._models)

    # ------------------------------------------------------------------
    # user enrollment (Fig. 2 key delivery)
    # ------------------------------------------------------------------
    def enroll_user(
        self, entropy: bytes, verifier: AttestationVerificationService
    ) -> UserSession:
        """Run the attested key exchange for one user and hand back their
        session (the user-side object; in a real deployment this happens on
        the user's device)."""
        client = UserClient(
            params=self.params,
            verifier=verifier,
            expected_mrenclave=self.enclave.measurement.mrenclave,
            entropy=entropy,
        )
        quote, sealed = self._distribution.serve_exchange(client.begin_exchange())
        keys = client.complete_exchange(quote, sealed)
        context = Context(self.params)
        return UserSession(
            context=context,
            encoder=ScalarEncoder(context),
            encryptor=Encryptor(context, keys.public),
            decryptor=Decryptor(context, keys.secret),
            quantized_by_model=dict(self._models),
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def infer(self, model_name: str, ct: Ciphertext) -> ServedResult:
        """Run the hybrid pipeline on encrypted pixels; logits stay encrypted."""
        quantized = self._require_model(model_name)
        conv_weights, dense_weights = self._encoded[model_name]
        tracer = self.platform.tracer

        def stage(name: str):
            return tracer.stage(
                name, counter=self.counter, side_channel=self.enclave.side_channel
            )

        with tracer.span(
            "EdgeServer/EncryptSGX",
            kind="pipeline",
            counter=self.counter,
            side_channel=self.enclave.side_channel,
            model=model_name,
            batch=int(ct.batch_shape[0]),
        ) as trace:
            with stage("conv"):
                conv = heops.he_conv2d(self.evaluator, self.encoder, ct, conv_weights)

            with stage("sgx_activation_pool"):
                hidden = self.enclave.ecall(
                    "activation_pool",
                    conv,
                    quantized.conv_output_scale,
                    quantized.act_scale,
                    quantized.pool_window,
                    quantized.activation,
                    quantized.pool,
                )

            with stage("fc"):
                logits_ct = heops.he_dense(
                    self.evaluator, self.encoder, hidden, dense_weights
                )

        timing = InferenceResult(
            logits=np.zeros((ct.batch_shape[0], dense_weights.out_features)),
            stages=stages_from_trace(trace),
            scheme="EdgeServer/EncryptSGX",
            op_counts=dict(self.counter.counts),
            enclave_crossings=trace.crossings,
            trace=trace,
        )
        return ServedResult(logits_ct=logits_ct, timing=timing)

    def _require_model(self, name: str) -> QuantizedCNN:
        quantized = self._models.get(name)
        if quantized is None:
            raise PipelineError(
                f"unknown model {name!r}; provisioned: {self.models()}"
            )
        return quantized
