"""Edge-server facade: the deployable face of the framework.

Ties the pieces together the way the paper's deployment story does
(Sections IV + VII): one SGX-capable edge node hosts an inference enclave
that is simultaneously key authority and plaintext co-processor; quantized
models are provisioned once (optionally persisted as *sealed* blobs so a
restarted enclave of the same identity can recover them from untrusted
storage); users enroll via remote attestation; and inference requests are
routed to the hybrid pipeline -- slot-packed when the parameters allow it
and the caller asks for throughput.

This is the API a downstream integrator would embed::

    server = EdgeServer(params, seed=7, fleet_size=2)
    server.provision_model("digits", quantized)
    session = server.enroll_user(entropy=os.urandom(32), verifier=verifier)
    request = InferenceRequest(model="digits", ciphertext=session.encrypt("digits", images))
    response = server.infer(request)
    predictions = session.decrypt(response)

The canonical request form is one frozen
:class:`~repro.serve.api.InferenceRequest`; the historical keyword soup
(``infer(name, ct, pack=..., deadline_ms=...)``) still works behind a
``DeprecationWarning``.  ``fleet_size > 1`` runs N enclave replicas behind
one facade (see :class:`~repro.faults.FleetManager`): replica 0 generates
the HE key pair, the rest join via quote-verified sealed-key migration, and
packed flushes fail over to a surviving replica on replica loss.  Load
generators drive the scheduler directly via ``server.scheduler.submit`` /
``pump`` / ``drain`` (see ``examples/multi_user_service.py`` for the full
runnable flow), or the event-driven :class:`~repro.serve.ServingLoop`.
"""

from __future__ import annotations

import json
import struct
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core import heops
from repro.core.enclave_service import InferenceEnclave
from repro.core.keyflow import SgxKeyDistribution, UserClient
from repro.core.results import InferenceResult, stages_from_trace
from repro.errors import PipelineError, SealingError, UnknownModelError
from repro.faults import EnclaveSupervisor, FleetManager, run_with_kernel_degradation
from repro.he import serialize as he_serialize
from repro.he.context import Ciphertext, Context
from repro.he.decryptor import Decryptor, decrypt_scalar_values
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.he.evaluator import Evaluator, OperationCounter
from repro.he.params import EncryptionParams
from repro.nn.quantize import QuantizedCNN
from repro.obs import metrics
from repro.obs import context as obs_context
from repro.obs.context import TraceContext
from repro.serve.api import InferenceRequest
from repro.serve.api import InferenceResult as _ServeResult
from repro.sgx.attestation import AttestationVerificationService, QuotingService
from repro.sgx.enclave import SgxPlatform
from repro.sgx.sealing import SealedBlob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import PipelineSpec
    from repro.serve import RequestScheduler, ServeConfig


@dataclass
class UserSession:
    """A user's view after successful enrollment: their own crypto endpoints."""

    context: Context
    encoder: ScalarEncoder
    encryptor: Encryptor
    decryptor: Decryptor
    quantized_by_model: dict

    def encrypt(self, model_name: str, images: np.ndarray) -> Ciphertext:
        quantized = self._quantized(model_name)
        pixels = quantized.quantize_images(images)
        return self.encryptor.encrypt(self.encoder.encode(pixels))

    def decrypt(self, result: "ServedResult") -> np.ndarray:
        return self.decrypt_logits(result).argmax(axis=1)

    def decrypt_logits(self, result: "ServedResult") -> np.ndarray:
        return decrypt_scalar_values(self.decryptor, self.encoder, result.logits_ct)

    def _quantized(self, model_name: str) -> QuantizedCNN:
        quantized = self.quantized_by_model.get(model_name)
        if quantized is None:
            raise UnknownModelError(f"unknown model {model_name!r}")
        return quantized


# The server's result type now lives with the request type in
# ``repro.serve.api``; ``ServedResult`` stays as a pure alias so every
# existing constructor call and isinstance check keeps working unchanged.
ServedResult = _ServeResult


def _pack_model_payload(name: str, quantized: QuantizedCNN) -> bytes:
    """Serialize a named model pickle-free: JSON metadata header (scalars)
    plus the library's int64 wire format for the weight arrays, so that
    nothing executable ever round-trips through sealed storage."""
    meta = json.dumps(
        {
            "name": name,
            "input_scale": int(quantized.input_scale),
            "conv_weight_scale": float(quantized.conv_weight_scale),
            "dense_weight_scale": float(quantized.dense_weight_scale),
            "act_scale": int(quantized.act_scale),
            "activation": quantized.activation,
            "pool": quantized.pool,
            "pool_window": int(quantized.pool_window),
            "stride": int(quantized.stride),
        }
    ).encode("utf-8")
    arrays = he_serialize.serialize_int64_arrays(
        [
            quantized.conv_weight,
            quantized.conv_bias,
            quantized.dense_weight,
            quantized.dense_bias,
        ]
    )
    return struct.pack("<I", len(meta)) + meta + arrays


def _unpack_model_payload(payload: bytes) -> tuple[str, QuantizedCNN]:
    (meta_len,) = struct.unpack_from("<I", payload, 0)
    meta = json.loads(payload[4 : 4 + meta_len].decode("utf-8"))
    arrays, _ = he_serialize.deserialize_int64_arrays(payload[4 + meta_len :])
    quantized = QuantizedCNN(
        conv_weight=arrays[0],
        conv_bias=arrays[1],
        dense_weight=arrays[2],
        dense_bias=arrays[3],
        input_scale=meta["input_scale"],
        conv_weight_scale=meta["conv_weight_scale"],
        dense_weight_scale=meta["dense_weight_scale"],
        act_scale=meta["act_scale"],
        activation=meta["activation"],
        pool=meta["pool"],
        pool_window=meta["pool_window"],
        stride=meta["stride"],
    )
    return meta["name"], quantized


class EdgeServer:
    """One SGX-capable edge node running the hybrid framework.

    Args:
        params: FV parameter set all hosted models share.
        platform: simulated SGX machine (fresh by default).
        seed: reproducible randomness for keygen and encryption.
        serve_config: policy for the packing scheduler (defaults apply when
            omitted); the scheduler itself is created lazily on first use.
        fleet_size: enclave replicas behind the facade (default 1, the
            historical single-enclave server).  Replica 0 generates the key
            pair; the rest join via quote-verified sealed-key migration, so
            every replica decrypts and refreshes with the same keys.
    """

    def __init__(
        self,
        params: EncryptionParams,
        platform: SgxPlatform | None = None,
        seed: int | None = None,
        serve_config: "ServeConfig | None" = None,
        *,
        fleet_size: int = 1,
    ) -> None:
        self.params = params
        self.platform = platform if platform is not None else SgxPlatform()
        self.context = Context(params)
        self.fleet = FleetManager(
            self.platform, InferenceEnclave, params, seed, replicas=fleet_size
        )
        self.fleet.generate_keys()
        self.quoting = QuotingService(self.platform)
        self._exchanges = 0
        self.counter = OperationCounter()
        self.evaluator = Evaluator(self.context, self.counter)
        self.encoder = ScalarEncoder(self.context)
        self._models: dict[str, QuantizedCNN] = {}
        self._encoded: dict[str, heops.EncodedModel] = {}
        self._serve_config = serve_config
        self._scheduler: "RequestScheduler | None" = None

    @classmethod
    def from_spec(
        cls,
        spec: "PipelineSpec",
        platform: SgxPlatform | None = None,
        seed: int | None = None,
        sizing_model: QuantizedCNN | None = None,
    ) -> "EdgeServer":
        """Build a server from a declarative :class:`~repro.core.pipeline.
        PipelineSpec`: parameters (exact, or auto-sized against
        ``sizing_model``), kernel profile, flush worker count, graph
        optimizer level, fleet size and queue bounds all come from the
        spec."""
        spec.apply_kernel_profile()
        spec.apply_workers()
        spec.apply_graph_optimizer()
        return cls(
            spec.resolve_params(sizing_model),
            platform=platform,
            seed=seed,
            serve_config=spec.serve_config(),
            fleet_size=spec.fleet_size,
        )

    @property
    def enclave(self) -> EnclaveSupervisor:
        """The fleet's current key-authority replica.

        A property, not a bound attribute, so that after an authority
        failover attestation, sealing and key exchange all re-point at the
        surviving authority automatically.
        """
        return self.fleet.authority

    # ------------------------------------------------------------------
    # model provisioning
    # ------------------------------------------------------------------
    def provision_model(self, name: str, quantized: QuantizedCNN) -> None:
        """Install a quantized model and pre-encode its weights (§IV-B)."""
        if quantized.activation == "square":
            raise PipelineError(
                "the edge server runs the hybrid framework; square-activation "
                "models belong to the pure-HE baseline"
            )
        if not quantized.fits_plain_modulus(self.params.plain_modulus):
            raise PipelineError(
                f"model {name!r} needs t >= {quantized.required_plain_modulus()}"
            )
        self._models[name] = quantized
        self._encoded[name] = heops.encode_model_weights(
            self.evaluator, self.encoder, quantized
        )
        self.fleet.register_model(name)
        registry = metrics.registry()
        if registry.enabled:
            from repro.he.noise import NoiseEstimator

            headroom_gauge = registry.gauge(
                "repro_he_noise_budget_bits",
                "Estimated remaining invariant-noise budget per encrypted "
                "layer (SGX refresh resets each layer to fresh noise).",
                ("layer", "model"),
            )
            estimator = NoiseEstimator(self.params)
            for layer, bits in estimator.layer_headroom(quantized).items():
                headroom_gauge.labels(model=name, layer=layer).set(bits)

    def seal_model(self, name: str) -> SealedBlob:
        """Persist a provisioned model as a sealed blob for untrusted storage.

        Only an enclave with the same MRENCLAVE on the same platform can
        recover it -- the paper's "deployed in the edge server securely"
        assumption made concrete.  The payload is pickle-free (JSON metadata
        plus the library's int64 wire format).
        """
        quantized = self._require_model(name)
        return self.enclave.seal(_pack_model_payload(name, quantized))

    def restore_model(self, blob: SealedBlob) -> str:
        """Unseal and re-provision a model (e.g. after an enclave restart).

        Raises:
            SealingError: the blob belongs to a different enclave/platform
                or was tampered with.
        """
        try:
            payload = self.enclave.unseal(blob)
        except SealingError:
            raise
        name, quantized = _unpack_model_payload(payload)
        self.provision_model(name, quantized)
        return name

    def models(self) -> list[str]:
        return sorted(self._models)

    def model(self, name: str) -> QuantizedCNN:
        """The provisioned quantized model, or :class:`UnknownModelError`."""
        return self._require_model(name)

    def encoded_model(self, name: str) -> heops.EncodedModel:
        """The pre-encoded HE weights for a provisioned model."""
        self._require_model(name)
        return self._encoded[name]

    # ------------------------------------------------------------------
    # user enrollment (Fig. 2 key delivery)
    # ------------------------------------------------------------------
    def descriptor(self) -> dict:
        """What a connecting client learns about this endpoint before any
        trust is established: hosted models, the fleet's code identity and
        topology, and the key generation sessions pin against."""
        return {
            "models": self.models(),
            "mrenclave": self.enclave.measurement.mrenclave,
            "replicas": self.fleet.live_replicas(),
            "authority": self.fleet.authority_id,
            "key_generation": self.fleet.key_generation,
        }

    def serve_key_exchange(self, user_dh_public):
        """Server half of the attested DH key exchange (Fig. 2): returns
        ``(quote, sealed_message)`` for the client to verify and open.

        The exchange is served by the *current* authority replica, built
        per call so an authority failover between exchanges is transparent.
        """
        distribution = SgxKeyDistribution(
            platform=self.platform, enclave=self.enclave, quoting=self.quoting
        )
        self._exchanges += 1
        # Enrollment is control-plane work: a derived context keeps the
        # exchange's ECALL spans attributable without a client request.
        exchange_context = (
            None
            if obs_context.current()
            else TraceContext.derive(
                "server:key_exchange",
                self._exchanges,
                parent_id=f"server/key_exchange-{self._exchanges}",
            )
        )
        with obs_context.activate(exchange_context):
            return distribution.serve_exchange(user_dh_public)

    def enroll_user(
        self, entropy: bytes, verifier: AttestationVerificationService
    ) -> UserSession:
        """Run the attested key exchange for one user and hand back their
        session (the user-side object; in a real deployment this happens on
        the user's device -- the :mod:`repro.client` SDK is that device-side
        flow with an explicit state machine)."""
        client = UserClient(
            params=self.params,
            verifier=verifier,
            expected_mrenclave=self.enclave.measurement.mrenclave,
            entropy=entropy,
        )
        quote, sealed = self.serve_key_exchange(client.begin_exchange())
        keys = client.complete_exchange(quote, sealed)
        context = Context(self.params)
        return UserSession(
            context=context,
            encoder=ScalarEncoder(context),
            encryptor=Encryptor(context, keys.public),
            decryptor=Decryptor(context, keys.secret),
            quantized_by_model=dict(self._models),
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> "RequestScheduler":
        """The server's packing scheduler (created lazily; requires a
        batching-capable parameter set)."""
        if self._scheduler is None:
            from repro.serve import RequestScheduler

            self._scheduler = RequestScheduler(self, self._serve_config)
        return self._scheduler

    def infer(
        self,
        request: "InferenceRequest | str",
        ct: Ciphertext | None = None,
        *,
        pack: bool | None = None,
        deadline_ms: float | None = None,
    ) -> ServedResult:
        """Run the hybrid pipeline on encrypted pixels; logits stay encrypted.

        The canonical form takes one frozen, validated
        :class:`~repro.serve.api.InferenceRequest`::

            server.infer(InferenceRequest(model="digits", ciphertext=ct))
            server.infer(InferenceRequest(model="digits", ciphertext=ct,
                                          pack=True, deadline_ms=5.0))

        ``pack=True`` routes through the slot-packing scheduler; the call
        stays synchronous (it drains the model's bucket if the submission
        did not already fill a batch), so concurrent callers that submitted
        earlier ride the same flush and share its HE cost.  ``deadline_ms``
        is the packed path's coalescing deadline in simulated milliseconds.

        The historical keyword soup -- ``infer(name, ct, pack=...,
        deadline_ms=...)`` -- still works but emits a
        :class:`DeprecationWarning`; it is normalized into the same
        ``InferenceRequest`` (and therefore the same validation) internally.
        """
        if isinstance(request, InferenceRequest):
            if ct is not None or pack is not None or deadline_ms is not None:
                raise PipelineError(
                    "infer(InferenceRequest) takes no extra arguments; put "
                    "the serving policy on the request itself"
                )
        else:
            warnings.warn(
                "EdgeServer.infer(model_name, ct, pack=..., deadline_ms=...) "
                "is deprecated; pass a single InferenceRequest instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if deadline_ms is not None and not pack:
                raise PipelineError("deadline_ms is only meaningful with pack=True")
            request = InferenceRequest(
                model=request,
                ciphertext=ct,
                pack=bool(pack),
                deadline_ms=deadline_ms,
            )
        if request.pack:
            response = self.scheduler.submit(
                request.model,
                request.ciphertext,
                deadline_s=request.deadline_s,
                context=request.context,
            )
            if not response.done():
                self.scheduler.drain(request.model)
            return response.result()

        return run_with_kernel_degradation(
            self.platform.tracer,
            "EdgeServer/EncryptSGX",
            lambda: self._infer_direct(
                request.model, request.ciphertext, context=request.context
            ),
        )

    def _infer_direct(
        self,
        model_name: str,
        ct: Ciphertext,
        context: "TraceContext | None" = None,
    ) -> ServedResult:
        quantized = self._require_model(model_name)
        encoded = self._encoded[model_name]
        tracer = self.platform.tracer

        def stage(name: str):
            return tracer.stage(
                name, counter=self.counter, side_channel=self.enclave.side_channel
            )

        trace_attrs: dict = {}
        if context is not None:
            trace_attrs["trace_id"] = context.trace_id
            if context.parent_id:
                trace_attrs["trace_parent"] = context.parent_id
        with obs_context.activate(context), tracer.span(
            "EdgeServer/EncryptSGX",
            kind="pipeline",
            counter=self.counter,
            side_channel=self.enclave.side_channel,
            model=model_name,
            batch=int(ct.batch_shape[0]),
            **trace_attrs,
        ) as trace:
            with stage("conv"):
                conv = heops.he_conv2d(self.evaluator, self.encoder, ct, encoded.conv)

            with stage("sgx_activation_pool"):
                hidden = self.enclave.ecall(
                    "activation_pool",
                    conv,
                    quantized.conv_output_scale,
                    quantized.act_scale,
                    quantized.pool_window,
                    quantized.activation,
                    quantized.pool,
                )

            with stage("fc"):
                logits_ct = heops.he_dense(
                    self.evaluator, self.encoder, hidden, encoded.dense
                )

        timing = InferenceResult(
            logits=np.zeros((ct.batch_shape[0], encoded.dense.out_features)),
            stages=stages_from_trace(trace),
            scheme="EdgeServer/EncryptSGX",
            op_counts=dict(self.counter.counts),
            enclave_crossings=trace.crossings,
            trace=trace,
        )
        return ServedResult(
            logits_ct=logits_ct,
            timing=timing,
            replica=self.enclave.replica,
            context=context,
        )

    def _require_model(self, name: str) -> QuantizedCNN:
        quantized = self._models.get(name)
        if quantized is None:
            raise UnknownModelError(
                f"unknown model {name!r}; provisioned: {self.models()}"
            )
        return quantized
