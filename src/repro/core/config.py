"""Parameter selection and trained-model factories for the pipelines.

Sizing logic: the hybrid pipeline only needs noise headroom for *one* linear
layer (the enclave refresh resets noise at every activation), whereas the
pure-HE baseline must survive conv -> square -> relinearize -> pool -> FC in
one encrypted breath -- which is why its coefficient modulus (and latency)
balloons.  ``parameters_for_pipeline`` makes that asymmetry concrete and
validated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.he import modmath
from repro.he.noise import NoiseEstimator
from repro.he.params import EncryptionParams
from repro.nn.data import Dataset, synthetic_mnist
from repro.nn.model import Sequential, cryptonets_cnn, paper_cnn, scaled_cnn
from repro.nn.quantize import QuantizedCNN
from repro.nn.train import train

#: Largest NTT prime width that keeps int64 products safe.
_PRIME_BITS = 30


def _next_power_of_two(value: int) -> int:
    return 1 << max(2, (value - 1).bit_length())


def parameters_for_pipeline(
    quantized: QuantizedCNN,
    poly_degree: int,
    margin_bits: float = 8.0,
    name: str | None = None,
    batching: bool = False,
) -> EncryptionParams:
    """Smallest parameter set (in prime count) that fits the quantized model.

    The plaintext modulus is the next power of two above the model's
    worst-case intermediate (or, with ``batching=True``, the smallest NTT
    prime above it, enabling CRT slot packing); coefficient primes are added
    until the noise estimator clears the pipeline's circuit with
    ``margin_bits`` to spare.

    Raises:
        ParameterError: no parameter set below 12 primes works (the model
            needs coarser quantization or a larger degree).
    """
    bound = quantized.required_plain_modulus()
    if batching:
        if bound >= 1 << 30:
            raise ParameterError(
                "batching plaintext moduli are limited to 31 bits; the model's "
                f"intermediates need t >= {bound} -- quantize more coarsely"
            )
        t = modmath.ntt_primes(max(2, bound.bit_length() + 1), poly_degree, 1)[0]
    else:
        t = _next_power_of_two(bound)
    pure_he, w_norm, additions = quantized.noise_profile()
    for count in range(1, 13):
        try:
            primes = modmath.ntt_primes(_PRIME_BITS, poly_degree, count)
            params = EncryptionParams(
                poly_degree=poly_degree,
                coeff_primes=tuple(primes),
                plain_modulus=t,
                name=name or f"auto_{poly_degree}_{'he' if pure_he else 'hybrid'}",
            )
        except ParameterError:
            # Too few primes for this t (or no more primes at this degree);
            # try a wider modulus.
            continue
        estimator = NoiseEstimator(params)
        budget = estimator.budget_after(
            multiplies=1 if pure_he else 0,
            plain_multiplies=2,
            plain_norm=w_norm,
            additions=additions,
        )
        if budget >= margin_bits:
            return params
    raise ParameterError(
        f"no parameter set at degree {poly_degree} fits t={t} with the "
        f"required noise budget; reduce quantization scales"
    )


@dataclass
class TrainedModels:
    """A matched pair of trained models plus their dataset.

    ``sigmoid`` is the paper_cnn (hybrid + plaintext pipelines);
    ``square`` is the cryptonets_cnn (pure-HE baseline).  Both are trained
    on the same synthetic data so Fig. 8 comparisons are apples-to-apples.
    """

    dataset: Dataset
    sigmoid: Sequential
    square: Sequential

    def quantized_sigmoid(self, weight_bits: int = 6, act_scale: int = 63) -> QuantizedCNN:
        return QuantizedCNN.from_float(
            self.sigmoid, weight_bits=weight_bits, input_scale=255, act_scale=act_scale
        )

    def quantized_square(self, weight_bits: int = 4, input_scale: int = 15) -> QuantizedCNN:
        return QuantizedCNN.from_float(
            self.square, weight_bits=weight_bits, input_scale=input_scale
        )


def train_paper_models(
    train_size: int = 1200,
    test_size: int = 300,
    epochs: int = 10,
    seed: int = 2021,
    image_size: int = 28,
    channels: int = 6,
    kernel_size: int = 5,
    verbose: bool = False,
) -> TrainedModels:
    """Train the sigmoid and square variants of the paper CNN.

    ``image_size``/``channels``/``kernel_size`` default to the paper's
    Table VI; smaller values produce the dimensionally reduced twin used by
    tests and scaled benchmark runs.
    """
    data = synthetic_mnist(train_size=train_size, test_size=test_size, seed=seed)
    if image_size != 28:
        data = _crop_dataset(data, image_size)
    rng = np.random.default_rng(seed)
    if image_size == 28 and channels == 6 and kernel_size == 5:
        sigmoid_model = paper_cnn(rng)
        square_model = cryptonets_cnn(np.random.default_rng(seed + 1))
    else:
        sigmoid_model = scaled_cnn(image_size, channels, kernel_size, rng=rng)
        square_model = scaled_cnn(
            image_size, channels, kernel_size, cryptonets=True,
            rng=np.random.default_rng(seed + 1),
        )
    # Square nets need damped initialization and a gentler learning rate.
    square_model.layers[0].weight *= 0.3
    square_model.layers[-1].weight *= 0.1
    train(
        sigmoid_model,
        data.train_float(),
        data.train_labels,
        epochs=epochs,
        learning_rate=0.1,
        eval_images=data.test_float(),
        eval_labels=data.test_labels,
        verbose=verbose,
        seed=seed,
    )
    train(
        square_model,
        data.train_float(),
        data.train_labels,
        epochs=epochs,
        learning_rate=0.02,
        eval_images=data.test_float(),
        eval_labels=data.test_labels,
        verbose=verbose,
        seed=seed,
    )
    return TrainedModels(dataset=data, sigmoid=sigmoid_model, square=square_model)


def _crop_dataset(data: Dataset, size: int) -> Dataset:
    """Center-crop a 28 x 28 dataset to ``size`` for the scaled CNN."""
    lo = (28 - size) // 2
    hi = lo + size
    return Dataset(
        train_images=data.train_images[:, :, lo:hi, lo:hi],
        train_labels=data.train_labels,
        test_images=data.test_images[:, :, lo:hi, lo:hi],
        test_labels=data.test_labels,
    )


def required_budget_bits(params: EncryptionParams, pure_he: bool) -> float:
    """Informational: estimated budget the pipeline consumes under ``params``."""
    estimator = NoiseEstimator(params)
    return estimator.fresh_budget() - estimator.budget_after(
        multiplies=1 if pure_he else 0, plain_multiplies=2, additions=1000
    )
