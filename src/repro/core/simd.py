"""SIMD-packed hybrid inference -- the paper's Section VIII extension.

The paper encodes one value per ciphertext and predicts that CRT batching
would buy "1024 times the throughput".  This module implements that
extension for the hybrid framework: up to ``n`` user images ride in the
CRT *slots* of each pixel-position ciphertext, so the whole encrypted CNN
costs one ciphertext operation per pixel *position* -- independent of how
many users share the batch.

Requires a batching-capable plaintext modulus (prime ``t ≡ 1 mod 2n``);
use ``parameters_for_pipeline(..., batching=True)``.

All slot traffic is still end-to-end encrypted: the enclave decodes the
slot packing only after decrypting inside trusted code
(:meth:`InferenceEnclave.activation_pool_simd`).
"""

from __future__ import annotations

import numpy as np

from repro.core import heops
from repro.core.enclave_service import InferenceEnclave
from repro.core.keyflow import establish_user_keys
from repro.core.results import InferenceResult, stages_from_trace
from repro.errors import PipelineError
from repro.faults import EnclaveSupervisor, run_with_kernel_degradation
from repro.he import kernels
from repro.he.batching import BatchEncoder
from repro.he.context import Ciphertext, Context
from repro.he.decryptor import Decryptor
from repro.he.encoders import ScalarEncoder
from repro.he.encryptor import Encryptor
from repro.he.evaluator import Evaluator, OperationCounter
from repro.he.params import EncryptionParams
from repro.nn.quantize import QuantizedCNN
from repro.sgx.attestation import AttestationVerificationService, QuotingService
from repro.sgx.enclave import SgxPlatform


class SlotCodec:
    """Packs an image batch into CRT slots, one ciphertext per pixel position.

    Layout: a tensor of integers with shape ``(B, C, H, W)`` becomes a
    plaintext batch of shape ``(1, C, H, W)`` whose slot ``b`` carries image
    ``b``'s value at that position.
    """

    def __init__(self, context: Context) -> None:
        self.encoder = BatchEncoder(context)

    @property
    def slot_count(self) -> int:
        return self.encoder.slot_count

    def encode(self, values: np.ndarray):
        if values.ndim != 4:
            raise PipelineError("SlotCodec expects (B, C, H, W) integer values")
        if values.shape[0] > self.slot_count:
            raise PipelineError(
                f"batch of {values.shape[0]} exceeds the {self.slot_count} "
                "available slots"
            )
        return self.encoder.encode_batch_axis(values)

    def decode(self, plain, batch: int) -> np.ndarray:
        return self.encoder.decode_batch_axis(plain, batch)

    def decode_flat(self, plain, batch: int) -> np.ndarray:
        """Decode a ``(1, D)``-batched plaintext into ``(B, D)`` values."""
        return self.encoder.decode_batch_axis(plain, batch)


class SimdHybridPipeline:
    """Hybrid HE+SGX inference with slot-packed user batches.

    Functionally identical to :class:`~repro.core.hybrid.HybridPipeline` in
    ``batched`` mode -- same partition, same enclave, bit-exact against the
    plaintext reference -- but an entire user batch shares each ciphertext,
    collapsing the per-image cost by up to the slot count.
    """

    scheme = "EncryptSGX-SIMD"

    def __init__(
        self,
        quantized: QuantizedCNN,
        params: EncryptionParams,
        platform: SgxPlatform | None = None,
        seed: int | None = None,
    ) -> None:
        if quantized.activation == "square":
            raise PipelineError("the SIMD hybrid serves exact-activation models only")
        if not params.supports_batching():
            raise PipelineError(
                "SIMD packing needs a batching plaintext modulus; build the "
                "parameters with parameters_for_pipeline(..., batching=True)"
            )
        if not quantized.fits_plain_modulus(params.plain_modulus):
            raise PipelineError(
                f"plain_modulus {params.plain_modulus} cannot hold the conv "
                f"intermediates (need >= {quantized.required_plain_modulus()})"
            )
        self.quantized = quantized
        self.params = params
        self.platform = platform if platform is not None else SgxPlatform()
        self.clock = self.platform.clock
        self.tracer = self.platform.tracer
        self.context = Context(params)
        self.codec = SlotCodec(self.context)

        self.enclave = EnclaveSupervisor(self.platform, InferenceEnclave, params, seed)
        self.enclave.ecall("generate_keys")
        self.quoting = QuotingService(self.platform)
        self.verifier = AttestationVerificationService()
        self.verifier.register_platform(self.quoting)
        entropy = np.random.default_rng(seed).bytes(32)
        user_keys = establish_user_keys(
            self.platform, self.enclave, self.quoting, self.verifier, params, entropy
        )

        self.counter = OperationCounter()
        self.evaluator = Evaluator(self.context, self.counter)
        self.encoder = ScalarEncoder(self.context)
        self.encryptor = Encryptor(self.context, user_keys.public, np.random.default_rng(seed))
        self.decryptor = Decryptor(self.context, user_keys.secret)
        encoded = heops.encode_model_weights(self.evaluator, self.encoder, quantized)
        self.conv_weights = encoded.conv
        self.dense_weights = encoded.dense

    @property
    def slot_count(self) -> int:
        return self.codec.slot_count

    def encrypt_images(self, images: np.ndarray) -> Ciphertext:
        pixels = self.quantized.quantize_images(images)
        return self.encryptor.encrypt(self.codec.encode(pixels))

    def _stage(self, name: str):
        return self.tracer.stage(
            name, counter=self.counter, side_channel=self.enclave.side_channel
        )

    def infer(self, images: np.ndarray) -> InferenceResult:
        """One inference; degrades FUSED -> REFERENCE kernels and retries
        once if the runtime equivalence guard trips (identical logits)."""
        return run_with_kernel_degradation(
            self.tracer, self.scheme, lambda: self._infer_once(images)
        )

    def _infer_once(self, images: np.ndarray) -> InferenceResult:
        batch = images.shape[0]
        with self.tracer.span(
            self.scheme,
            kind="pipeline",
            counter=self.counter,
            side_channel=self.enclave.side_channel,
            kernel_mode=kernels.active().mode_name,
            batch=int(batch),
            slot_count=self.slot_count,
        ) as trace:
            with self._stage("encrypt"):
                ct = self.encrypt_images(images)

            with self._stage("conv"):
                conv = heops.he_conv2d(
                    self.evaluator, self.encoder, ct, self.conv_weights
                )

            with self._stage("sgx_activation_pool"):
                hidden = self.enclave.ecall(
                    "activation_pool_simd",
                    conv,
                    self.quantized.conv_output_scale,
                    self.quantized.act_scale,
                    self.quantized.pool_window,
                    self.quantized.activation,
                    self.quantized.pool,
                )

            with self._stage("fc"):
                logits_ct = heops.he_dense(
                    self.evaluator, self.encoder, hidden, self.dense_weights
                )

            budget = self.decryptor.invariant_noise_budget(logits_ct)
            with self._stage("decrypt"):
                logits = self.codec.decode_flat(
                    self.decryptor.decrypt(logits_ct), batch
                )

        return InferenceResult(
            logits=logits,
            stages=stages_from_trace(trace),
            scheme=self.scheme,
            noise_budget_bits=budget,
            op_counts=dict(self.counter.counts),
            enclave_crossings=trace.crossings,
            trace=trace,
        )
