"""Slot-packed request scheduling: the edge server's serving layer.

The paper's deployment story (Sections IV + VII) is one SGX edge node
serving many enrolled users, yet a naive facade runs one hybrid pipeline
pass per request -- every single-image inference pays the full per-pixel
HE cost.  CRT slot packing (Section VIII) is the throughput lever: up to
``n`` images can ride the slots of each pixel-position ciphertext, making
the encrypted CNN's cost independent of how many requests share the batch.

This scheduler turns that lever into a serving discipline:

* **Coalescing.**  Concurrent requests for the same model accumulate in a
  per-model bucket and are flushed as ONE slot-packed pipeline pass when the
  bucket reaches slot capacity, when the oldest request's deadline expires
  (:meth:`RequestScheduler.pump`), or on explicit
  :meth:`~RequestScheduler.drain`.
* **Legality.**  Cross-user packing is sound in this deployment because the
  enclave is the HE key authority (Section IV-A): every enrolled user holds
  the same key pair, so their ciphertexts are mutually compatible.  The
  actual re-layout (scalar batch -> slots, and back) happens inside the
  enclave (:meth:`InferenceEnclave.pack_slots` / ``unpack_slots``) -- the
  host never sees a pixel or logit in the clear.
* **Backpressure.**  The queue is bounded; a full queue rejects new work
  with :class:`~repro.errors.QueueFullError` instead of buffering without
  limit.  Unknown models and requests larger than the packing capacity are
  likewise rejected up front with typed errors.
* **Observability.**  Every flush emits an ``EdgeServer/PackedServe``
  pipeline span (pack -> conv -> sgx_activation_pool -> fc -> unpack) plus
  one ``serve/request`` child span per request carrying its queue wait and
  the queue depth it observed at submit, all on the platform's
  :class:`~repro.obs.Tracer`.

Timing is in *simulated* seconds (:class:`~repro.sgx.clock.SimClock`), the
repository's timing currency -- deadlines are therefore deterministic and
testable without real sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import faults
from repro.core import heops
from repro.core.results import InferenceResult, stages_from_trace
from repro.errors import (
    BatchTooLargeError,
    EnclaveNotInitialized,
    QueueFullError,
    RecoveryExhausted,
    RequestFailedError,
    ResponseNotReady,
    ServeError,
    UnknownModelError,
)
from repro.faults import run_with_kernel_degradation
from repro.he import parallel
from repro.he.batching import pack_coefficients
from repro.he.context import Ciphertext
from repro.obs import metrics, recorder
from repro.obs import context as obs_context
from repro.obs.context import TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import EdgeServer, ServedResult

#: Scheme label stamped on packed-flush traces and results.
PACKED_SCHEME = "EdgeServer/PackedServe"


def _m_requests():
    return metrics.registry().counter(
        "repro_serve_requests_total",
        "Requests accepted into the scheduler queue.",
        ("model",),
    )


def _m_rejected():
    return metrics.registry().counter(
        "repro_serve_rejected_total",
        "Requests rejected at submit (queue_full is the backpressure signal).",
        ("reason",),
    )


def _m_failed():
    return metrics.registry().counter(
        "repro_serve_requests_failed_total",
        "Requests resolved with RequestFailedError after a dead flush.",
        ("model",),
    )


def _m_latency():
    return metrics.registry().histogram(
        "repro_serve_request_latency_seconds",
        "Per-request simulated latency, split into queue wait vs compute.",
        ("model", "phase"),
    )


def _m_retried():
    return metrics.registry().counter(
        "repro_fleet_retried_requests_total",
        "Requests re-dispatched to a surviving replica during whole-batch "
        "failover (one increment per request per retry attempt).",
        ("model",),
    )


def _m_occupancy():
    return metrics.registry().histogram(
        "repro_serve_batch_occupancy_ratio",
        "Images per packed flush as a fraction of slot-packing capacity.",
        ("model",),
        buckets=metrics.RATIO_BUCKETS,
    )


def _m_queue_depth():
    return metrics.registry().gauge(
        "repro_serve_queue_depth",
        "Queued (unflushed) requests across all models.",
    )


@dataclass
class ServeConfig:
    """Scheduler policy knobs.

    Attributes:
        max_queue_depth: bound on queued (unflushed) requests across all
            models; submissions beyond it raise
            :class:`~repro.errors.QueueFullError`.
        max_batch: images per packed flush; ``None`` means the full CRT slot
            capacity (the parameter set's polynomial degree).
        window_s: default coalescing deadline in simulated seconds for
            requests that do not specify one.
    """

    max_queue_depth: int = 64
    max_batch: int | None = None
    window_s: float = 0.025

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ServeError("max_queue_depth must be >= 1")
        if self.max_batch is not None and self.max_batch < 1:
            raise ServeError("max_batch must be >= 1 (or None for slot capacity)")
        if self.window_s < 0:
            raise ServeError("window_s must be >= 0")


@dataclass
class ServeStats:
    """Monotonic counters a load generator or test can read off."""

    submitted: int = 0
    served: int = 0
    failed: int = 0
    flushes: int = 0
    retried_requests: int = 0
    isolations: int = 0
    isolated_requests: int = 0
    packed_images: int = 0
    rejected_queue_full: int = 0
    rejected_oversized: int = 0
    rejected_unknown_model: int = 0
    rejected_malformed: int = 0
    peak_queue_depth: int = 0


class PendingResponse:
    """Future-like handle for one submitted request.

    Resolves when the request's batch is flushed; :meth:`result` then
    returns the per-request :class:`~repro.core.server.ServedResult` (still
    encrypted -- only the user's session can decrypt it).
    """

    def __init__(self, request_id: int, model: str) -> None:
        self.request_id = request_id
        self.model = model
        self._result: "ServedResult | None" = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._result is not None or self._error is not None

    def result(self) -> "ServedResult":
        """The served result.

        Raises:
            ResponseNotReady: the batch has not been flushed yet -- advance
                the scheduler with ``pump()`` or force it with ``drain()``.
        """
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise ResponseNotReady(
                f"request {self.request_id} ({self.model!r}) is still queued; "
                "call pump() or drain() to flush its batch"
            )
        return self._result

    def _resolve(self, result: "ServedResult") -> None:
        self._result = result

    def _fail(self, error: BaseException) -> None:
        self._error = error


@dataclass
class _QueuedRequest:
    request_id: int
    model: str
    ct: Ciphertext
    batch: int
    enqueued_at: float
    deadline_at: float
    queue_depth_at_submit: int
    response: PendingResponse
    context: TraceContext | None = None


class RequestScheduler:
    """Coalesces encrypted requests into slot-packed hybrid pipeline passes.

    Args:
        server: the :class:`~repro.core.server.EdgeServer` whose models,
            evaluator and enclave serve the batches.  Its parameter set must
            support CRT batching
            (``parameters_for_pipeline(..., batching=True)``).
        config: scheduling policy (a default :class:`ServeConfig` if None).

    Raises:
        ServeError: the server's plaintext modulus cannot batch.
    """

    def __init__(self, server: "EdgeServer", config: ServeConfig | None = None) -> None:
        if not server.params.supports_batching():
            raise ServeError(
                "slot-packed serving needs a batching plaintext modulus; build "
                "the server's parameters with "
                "parameters_for_pipeline(..., batching=True)"
            )
        self.server = server
        self.config = config if config is not None else ServeConfig()
        self.slot_count = server.params.poly_degree
        self.capacity = (
            self.slot_count
            if self.config.max_batch is None
            else min(self.config.max_batch, self.slot_count)
        )
        self.stats = ServeStats()
        self._queues: dict[str, list[_QueuedRequest]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # queue state
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Queued (unflushed) requests across all models."""
        return sum(len(bucket) for bucket in self._queues.values())

    def pending_images(self, model_name: str) -> int:
        """Images currently coalescing for ``model_name``."""
        return sum(r.batch for r in self._queues.get(model_name, ()))

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def validate_request(self, model_name: str, ct: Ciphertext) -> int:
        """Typed request validation shared by :meth:`submit` and the
        event-driven :class:`~repro.serve.loop.ServingLoop`.

        Every rejection increments the matching :class:`ServeStats` counter
        and the ``repro_serve_rejected_total`` family before raising, so
        rejection accounting is complete no matter which front end admitted
        the request.

        Returns:
            the request's image count (its batch dimension).

        Raises:
            UnknownModelError: ``model_name`` was never provisioned.
            ServeError: the ciphertext is not a non-empty 4-D pixel batch
                with this model's channel count (``malformed``).
            BatchTooLargeError: the request alone exceeds the capacity.
        """
        if model_name not in self.server.models():
            self.stats.rejected_unknown_model += 1
            _m_rejected().labels(reason="unknown_model").inc()
            raise UnknownModelError(
                f"unknown model {model_name!r}; provisioned: {self.server.models()}"
            )
        self.server.context.check_same(ct.context)
        if len(ct.batch_shape) != 4:
            self.stats.rejected_malformed += 1
            _m_rejected().labels(reason="malformed").inc()
            raise ServeError(
                f"requests must be (B, C, H, W) pixel ciphertexts, got batch "
                f"shape {ct.batch_shape}"
            )
        channels = self.server.encoded_model(model_name).conv.operands.shape[1]
        if ct.batch_shape[1] != channels:
            self.stats.rejected_malformed += 1
            _m_rejected().labels(reason="malformed").inc()
            raise ServeError(
                f"request has {ct.batch_shape[1]} channels, model "
                f"{model_name!r} expects {channels}"
            )
        batch = int(ct.batch_shape[0])
        if batch < 1:
            self.stats.rejected_malformed += 1
            _m_rejected().labels(reason="malformed").inc()
            raise ServeError("request ciphertext has an empty batch")
        if batch > self.capacity:
            self.stats.rejected_oversized += 1
            _m_rejected().labels(reason="oversized").inc()
            raise BatchTooLargeError(
                f"request of {batch} images exceeds the packing capacity "
                f"{self.capacity} (slots: {self.slot_count})"
            )
        return batch

    def submit(
        self,
        model_name: str,
        ct: Ciphertext,
        *,
        deadline_s: float | None = None,
        context: TraceContext | None = None,
    ) -> PendingResponse:
        """Enqueue one encrypted request; flushes immediately if it fills
        the model's packing capacity.

        Args:
            model_name: a provisioned model.
            ct: scalar-encoded ``(B, C, H, W)`` ciphertext (the same shape
                :meth:`EdgeServer.infer` takes); usually ``B == 1``.
            deadline_s: per-request coalescing deadline in simulated seconds
                (the config's ``window_s`` if None); ``pump()`` flushes the
                batch once it expires.
            context: trace context naming the request in the process-wide
                trace tree; when None a deterministic fallback is derived
                from the request id, so every flush span is attributable.

        Raises:
            UnknownModelError: ``model_name`` was never provisioned.
            BatchTooLargeError: the request alone exceeds the capacity.
            QueueFullError: the bounded queue is at ``max_queue_depth``.
            ServeError: the ciphertext is not a 4-D pixel batch for this
                model.
        """
        batch = self.validate_request(model_name, ct)
        # The depth this request actually observed on arrival: captured once
        # at entry, before any capacity-triggered early flush below can
        # empty the bucket out from under it.
        depth_at_entry = self.queue_depth
        if depth_at_entry >= self.config.max_queue_depth:
            self.stats.rejected_queue_full += 1
            _m_rejected().labels(reason="queue_full").inc()
            raise QueueFullError(
                f"queue is at its bound of {self.config.max_queue_depth} "
                "requests; drain or retry later"
            )

        # A request that would overflow the open batch closes it first, so
        # earlier requests are never starved past capacity.
        if self.pending_images(model_name) + batch > self.capacity:
            self._flush_model(model_name)

        clock = self.server.platform.clock
        window = self.config.window_s if deadline_s is None else deadline_s
        response = PendingResponse(self._next_id, model_name)
        if context is None:
            context = TraceContext.derive(
                f"scheduler:{model_name}", self._next_id,
                parent_id=f"scheduler/submit-{self._next_id}",
            )
        request = _QueuedRequest(
            request_id=self._next_id,
            model=model_name,
            ct=ct,
            batch=batch,
            enqueued_at=clock.now_s,
            deadline_at=clock.now_s + window,
            queue_depth_at_submit=depth_at_entry,
            response=response,
            context=context,
        )
        self._next_id += 1
        self._queues.setdefault(model_name, []).append(request)
        self.stats.submitted += 1
        self.stats.peak_queue_depth = max(self.stats.peak_queue_depth, self.queue_depth)
        _m_requests().labels(model=model_name).inc()
        _m_queue_depth().set(self.queue_depth)
        if self.pending_images(model_name) >= self.capacity:
            self._flush_model(model_name)
        return response

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Flush every bucket whose oldest deadline has expired on the
        simulated clock; returns the number of requests served."""
        now = self.server.platform.clock.now_s
        served = 0
        for model_name in list(self._queues):
            bucket = self._queues.get(model_name)
            if bucket and min(r.deadline_at for r in bucket) <= now + 1e-12:
                served += self._flush_model(model_name)
        return served

    def drain(self, model_name: str | None = None) -> int:
        """Flush everything queued (or one model's bucket) regardless of
        deadlines; returns the number of requests served."""
        served = 0
        targets = [model_name] if model_name is not None else list(self._queues)
        for name in targets:
            if self._queues.get(name):
                served += self._flush_model(name)
        return served

    def _flush_model(self, model_name: str) -> int:
        """Run one slot-packed hybrid pass over a model's queued requests
        and resolve each request with its slice of the encrypted logits.

        Never raises and never leaves a request queued: the bucket is popped
        up front, and a flush that dies resolves *every* popped request --
        either by re-running it in isolation (one poisoned request must not
        sink the batch) or by failing it with a causal
        :class:`~repro.errors.RequestFailedError`.  A permanently stuck
        :class:`~repro.errors.ResponseNotReady` is therefore impossible.
        """
        requests = self._queues.pop(model_name, [])
        if not requests:
            return 0
        served = 0
        for request, outcome in self.run_batch(model_name, requests):
            if isinstance(outcome, BaseException):
                request.response._fail(outcome)
            else:
                request.response._resolve(outcome)
                served += 1
        _m_queue_depth().set(self.queue_depth)
        return served

    def run_batch(
        self,
        model_name: str,
        requests: "list[_QueuedRequest]",
        *,
        flushed_at: float | None = None,
        replica: int | None = None,
        generation: int | None = None,
    ) -> "list[tuple[_QueuedRequest, ServedResult | BaseException]]":
        """Execute one packed flush over ``requests`` and account for it.

        The execution half of :meth:`_flush_model`, shared with the
        event-driven :class:`~repro.serve.loop.ServingLoop`: runs the packed
        pass under kernel degradation, falls back to per-request isolation
        when the pass dies, and records the flush/latency/occupancy stats
        and metrics -- but touches no queue state and resolves no response.
        Each request comes back paired with either its
        :class:`~repro.core.server.ServedResult` or the typed
        :class:`~repro.errors.RequestFailedError` to fail it with; the
        caller decides when to deliver them.

        When the server runs an enclave fleet, the flush executes on one
        replica (``replica``, or the fleet's least-loaded pick).  Replica
        *loss* -- an unrecoverable :class:`~repro.errors.RecoveryExhausted`
        or a destroyed handle's :class:`~repro.errors.EnclaveNotInitialized`
        -- retires the replica and **fails the whole batch over** to a
        surviving replica; because every replica restored the same sealed
        key pair, the survivor's logits are bit-identical.  Only when no
        survivor remains does the flush fall back to per-request isolation.

        Args:
            flushed_at: timestamp (in the caller's timing currency) that
                queue waits are measured against; defaults to the simulated
                clock, which is what the synchronous scheduler path wants.
            replica: fleet replica to execute on (the serving loop routes
                explicitly; None lets the fleet pick least-loaded).
            generation: the serving loop's flush generation, stamped on the
                flush trace and recorder events (None outside the loop).
        """
        tracer = self.server.platform.tracer
        clock = self.server.platform.clock
        fleet = getattr(self.server, "fleet", None)
        if fleet is not None and replica is None:
            replica = fleet.route(model_name)
        flush_start = clock.now_s
        images = sum(r.batch for r in requests)
        tried: list[int] = []
        while True:
            if fleet is not None and replica is not None:
                event = faults.poll(
                    "serve.fleet.replica", name=str(replica), model=model_name
                )
                if event is not None:
                    # Host-level replica loss at dispatch: the flush is
                    # already committed to this replica, so its first
                    # enclave crossing below dies and must fail over.
                    fleet.kill_replica(replica)
                fleet.note_dispatch(replica, model_name, images)
            try:
                results = run_with_kernel_degradation(
                    tracer,
                    PACKED_SCHEME,
                    lambda: self._run_packed(
                        model_name, requests, flushed_at=flushed_at,
                        replica=replica, generation=generation,
                    ),
                )
                break
            except (EnclaveNotInitialized, RecoveryExhausted) as exc:
                survivor = None
                if fleet is not None and replica is not None:
                    survivor = fleet.route(model_name, exclude=(*tried, replica))
                if survivor is None:
                    return self._isolate(
                        model_name, requests, exc,
                        flushed_at=flushed_at, replica=replica,
                    )
                fleet.retire(replica, exc)
                tried.append(replica)
                with tracer.span(
                    "recovery/replica_failover",
                    kind="span",
                    model=model_name,
                    from_replica=replica,
                    to_replica=survivor,
                    requests=len(requests),
                    error=str(exc),
                ):
                    metrics.registry().counter(
                        "repro_fleet_failovers_total",
                        "Packed flushes re-dispatched to a surviving replica "
                        "after replica loss.",
                        ("model",),
                    ).labels(model=model_name).inc()
                # Satellite fix: retries are accounted under their own
                # counter -- the latency histogram below observes each
                # resolved request exactly once, never once per attempt.
                self.stats.retried_requests += len(requests)
                _m_retried().labels(model=model_name).inc(len(requests))
                recorder.record(
                    "fleet.failover",
                    severity="warn",
                    t_s=clock.now_s,
                    model=model_name,
                    from_replica=replica,
                    to_replica=survivor,
                    requests=len(requests),
                    generation=generation,
                )
                replica = survivor
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                return self._isolate(
                    model_name, requests, exc, flushed_at=flushed_at, replica=replica
                )
        compute_s = clock.now_s - flush_start
        self.stats.flushes += 1
        self.stats.served += len(requests)
        self.stats.packed_images += images
        latency = _m_latency()
        for served in results:
            # Exactly one latency sample per resolved request, per phase --
            # failover attempts above retry the whole batch without
            # observing anything, so the end-to-end sample covers every
            # attempt's compute without duplicating the request.
            latency.labels(model=model_name, phase="queue").observe(served.queue_wait_s)
            latency.labels(model=model_name, phase="compute").observe(compute_s)
            latency.labels(model=model_name, phase="e2e").observe(
                served.queue_wait_s + compute_s
            )
        _m_occupancy().labels(model=model_name).observe(images / self.capacity)
        return list(zip(requests, results))

    def _isolate(
        self,
        model_name: str,
        requests: "list[_QueuedRequest]",
        exc: BaseException,
        *,
        flushed_at: float | None = None,
        replica: int | None = None,
    ) -> "list[tuple[_QueuedRequest, ServedResult | BaseException]]":
        """Recover from a dead packed flush by re-running each request as
        its own single-request pass; requests that still fail map to a typed
        :class:`~repro.errors.RequestFailedError` chaining the underlying
        cause, so callers never hang on ``result()``.

        Isolated re-runs are counted as ``isolated_requests`` -- never as
        ``flushes`` -- and emit the same per-request latency and occupancy
        observations the happy path does, so occupancy and latency
        distributions stay truthful under faults.
        """
        tracer = self.server.platform.tracer
        clock = self.server.platform.clock
        latency = _m_latency()
        self.stats.isolations += 1
        recorder.record(
            "serve.isolation",
            severity="warn",
            t_s=clock.now_s,
            model=model_name,
            requests=len(requests),
            error=type(exc).__name__,
        )
        outcomes: "list[tuple[_QueuedRequest, ServedResult | BaseException]]" = []
        with tracer.span(
            "recovery/request_isolation",
            kind="span",
            model=model_name,
            requests=len(requests),
            error=str(exc),
        ):
            for request in requests:
                cause: BaseException = exc
                if len(requests) > 1:
                    # Injected faults are counted per-site, so the poisoned
                    # request keeps failing while its batch-mates recover.
                    rerun_start = clock.now_s
                    try:
                        served = self._run_packed(
                            model_name, [request], flushed_at=flushed_at,
                            replica=replica,
                        )[0]
                        outcomes.append((request, served))
                        self.stats.isolated_requests += 1
                        self.stats.served += 1
                        self.stats.packed_images += request.batch
                        latency.labels(model=model_name, phase="queue").observe(
                            served.queue_wait_s
                        )
                        latency.labels(model=model_name, phase="compute").observe(
                            clock.now_s - rerun_start
                        )
                        latency.labels(model=model_name, phase="e2e").observe(
                            served.queue_wait_s + (clock.now_s - rerun_start)
                        )
                        _m_occupancy().labels(model=model_name).observe(
                            request.batch / self.capacity
                        )
                        continue
                    except Exception as single_exc:  # noqa: BLE001
                        cause = single_exc
                failure = RequestFailedError(
                    f"request {request.request_id} ({model_name!r}) failed "
                    f"during its packed flush: {cause}"
                )
                failure.__cause__ = cause
                outcomes.append((request, failure))
                self.stats.failed += 1
                _m_failed().labels(model=model_name).inc()
                recorder.record(
                    "serve.request_failed",
                    severity="error",
                    t_s=clock.now_s,
                    model=model_name,
                    request_id=request.request_id,
                    error=type(cause).__name__,
                )
        return outcomes

    def _run_packed(
        self,
        model_name: str,
        requests: list[_QueuedRequest],
        *,
        flushed_at: float | None = None,
        replica: int | None = None,
        generation: int | None = None,
    ) -> "list[ServedResult]":
        """One slot-packed pipeline pass; returns one result per request.

        Pure with respect to scheduler state -- no queue or stats mutation,
        no response resolution -- so callers may retry it safely.

        ``flushed_at`` overrides the flush timestamp queue waits are
        measured against: the serving loop passes its event-queue time so
        waits come out in the loop's deterministic virtual currency, while
        the default (the simulated clock) keeps the synchronous scheduler
        path bit-identical to its historical behavior.

        ``replica`` selects which fleet replica's supervised enclave runs
        the enclave stages (the fleet authority when None); every replica
        holds the same migrated key pair, so the choice never changes the
        decrypted logits.
        """
        from repro.core.server import ServedResult

        server = self.server
        quantized = server.model(model_name)
        encoded = server.encoded_model(model_name)
        tracer = server.platform.tracer
        clock = server.platform.clock
        fleet = getattr(server, "fleet", None)
        if fleet is not None:
            enclave = fleet.replica(replica)
        else:
            enclave = server.enclave
        total = sum(r.batch for r in requests)
        # Requests share the enclave's key pair, so their ciphertexts stack
        # into one scalar-encoded (total, C, H, W) batch.  The batch is
        # staged in the flush arena: one reused contiguous block per flush
        # (each request copied exactly once), and the stacked data is a
        # zero-copy view the fused kernels can hand to the worker pool as
        # index ranges.
        stacked = Ciphertext(
            server.context,
            parallel.stage_batch([r.ct.to_ntt().data for r in requests]),
            is_ntt=True,
        )
        if flushed_at is None:
            flushed_at = clock.now_s

        def stage(name: str):
            return tracer.stage(
                name, counter=server.counter, side_channel=enclave.side_channel
            )

        contexts = [r.context for r in requests]
        trace_attrs: dict = {}
        trace_ids = [c.trace_id for c in contexts if c is not None]
        if trace_ids:
            trace_attrs["trace_ids"] = trace_ids
        if generation is not None:
            trace_attrs["generation"] = generation
        with obs_context.activate(*contexts), tracer.span(
            PACKED_SCHEME,
            kind="pipeline",
            counter=server.counter,
            side_channel=enclave.side_channel,
            model=model_name,
            requests=len(requests),
            batch=total,
            slot_count=self.slot_count,
            replica=getattr(enclave, "replica", None),
            workers=parallel.active_workers(),
            **trace_attrs,
        ) as trace:
            with stage("pack"):
                # Host side: fold the B stacked requests into polynomial
                # coefficients homomorphically, so the enclave decrypts
                # one ciphertext per pixel position instead of B.
                folded = pack_coefficients(server.evaluator, stacked)
                packed = enclave.ecall("pack_slots", folded, total)
            with stage("conv"):
                conv = heops.he_conv2d(
                    server.evaluator, server.encoder, packed, encoded.conv
                )
            with stage("sgx_activation_pool"):
                hidden = enclave.ecall(
                    "activation_pool_simd",
                    conv,
                    quantized.conv_output_scale,
                    quantized.act_scale,
                    quantized.pool_window,
                    quantized.activation,
                    quantized.pool,
                )
            with stage("fc"):
                logits_packed = heops.he_dense(
                    server.evaluator, server.encoder, hidden, encoded.dense
                )
            with stage("unpack"):
                logits_ct = enclave.ecall("unpack_slots", logits_packed, total)
            for r in requests:
                request_attrs = {}
                if r.context is not None:
                    request_attrs["trace_id"] = r.context.trace_id
                    if r.context.parent_id:
                        request_attrs["trace_parent"] = r.context.parent_id
                if generation is not None:
                    request_attrs["generation"] = generation
                with tracer.span(
                    "serve/request",
                    request_id=r.request_id,
                    model=model_name,
                    queue_wait_s=flushed_at - r.enqueued_at,
                    queue_depth_at_submit=r.queue_depth_at_submit,
                    batch=r.batch,
                    replica=getattr(enclave, "replica", None),
                    **request_attrs,
                ):
                    pass

        timing = InferenceResult(
            logits=np.zeros((total, encoded.dense.out_features)),
            stages=stages_from_trace(trace),
            scheme=PACKED_SCHEME,
            op_counts=dict(server.counter.counts),
            enclave_crossings=trace.crossings,
            trace=trace,
        )
        results = []
        offset = 0
        for r in requests:
            results.append(
                ServedResult(
                    logits_ct=logits_ct[offset : offset + r.batch],
                    timing=timing,
                    request_id=r.request_id,
                    packed_batch=total,
                    queue_wait_s=flushed_at - r.enqueued_at,
                    replica=getattr(enclave, "replica", None),
                    context=r.context,
                )
            )
            offset += r.batch
        return results
