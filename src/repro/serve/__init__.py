"""Serving layer: slot-packed scheduling of concurrent encrypted requests.

Two front ends over the same packed-flush machinery:

* :mod:`repro.serve.scheduler` -- the synchronous, manually-cranked
  coalescing scheduler (``submit``/``pump``/``drain``): requests for the
  same model coalesce into one CRT-slot-packed hybrid pipeline pass (legal
  because the enclave is the key authority, so every enrolled user shares
  its key pair), with bounded-queue backpressure and typed rejections.
* :mod:`repro.serve.loop` -- the event-driven continuous-batching serving
  loop: a deterministic virtual-time event queue that admits open-loop
  traffic into in-flight slot groups, sheds load off a queue-wait estimate,
  honors priority classes, and evicts requests whose hard SLO deadlines
  became hopeless.  :mod:`repro.serve.traffic` generates the seeded
  open-loop traces (Poisson + bursty) that drive it.
"""

from repro.serve.api import InferenceRequest, InferenceResult
from repro.serve.loop import (
    LoopConfig,
    LoopStats,
    LoopTicket,
    ServiceTimeModel,
    ServingLoop,
)
from repro.serve.scheduler import (
    PACKED_SCHEME,
    PendingResponse,
    RequestScheduler,
    ServeConfig,
    ServeStats,
)
from repro.serve.traffic import (
    Arrival,
    TrafficTrace,
    bursty_trace,
    merge,
    poisson_trace,
)

__all__ = [
    "PACKED_SCHEME",
    "Arrival",
    "InferenceRequest",
    "InferenceResult",
    "LoopConfig",
    "LoopStats",
    "LoopTicket",
    "PendingResponse",
    "RequestScheduler",
    "ServeConfig",
    "ServeStats",
    "ServiceTimeModel",
    "ServingLoop",
    "TrafficTrace",
    "bursty_trace",
    "merge",
    "poisson_trace",
]
