"""Serving layer: slot-packed scheduling of concurrent encrypted requests.

See :mod:`repro.serve.scheduler` for the design notes -- the short version:
requests for the same model coalesce into one CRT-slot-packed hybrid
pipeline pass (legal because the enclave is the key authority, so every
enrolled user shares its key pair), with bounded-queue backpressure, a
simulated-clock coalescing window, and per-request tracing spans.
"""

from repro.serve.scheduler import (
    PACKED_SCHEME,
    PendingResponse,
    RequestScheduler,
    ServeConfig,
    ServeStats,
)

__all__ = [
    "PACKED_SCHEME",
    "PendingResponse",
    "RequestScheduler",
    "ServeConfig",
    "ServeStats",
]
