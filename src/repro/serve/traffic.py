"""Synthetic encrypted-inference traffic: seeded open-loop traces.

The serving loop (:mod:`repro.serve.loop`) is a discrete-event front end;
what it needs from a load generator is an *open-loop* arrival trace --
requests arrive when the (simulated) users decide, not when the server is
ready -- because open-loop traffic is what exposes queueing collapse: a
closed-loop generator slows down with the server and politely hides the
very p99 the SLO bench exists to measure.

Two trace shapes cover the paper's deployment story (one edge node, many
enrolled users):

* :func:`poisson_trace` -- homogeneous Poisson arrivals at ``rate_rps``,
  the steady-state "thousands of enrolled users each asking occasionally"
  regime (exponential inter-arrivals, memoryless).
* :func:`bursty_trace` -- an on/off modulated Poisson process: the rate
  alternates between ``base_rate_rps`` and ``burst_factor`` times it, the
  classic Markov-modulated approximation of flash crowds.  This is the
  trace that makes admission control earn its keep.

Every arrival carries a simulated ``user_id``, a priority class
(0 = interactive, highest), an index into the bench's pre-encrypted image
pool, and an optional hard SLO deadline (requests past it are worthless
and therefore evictable).

Determinism: a trace is a pure function of its seed and parameters -- one
``numpy`` generator, drawn in a fixed order -- so the same seed replays the
identical arrival sequence, which is what makes the SLO bench's report
reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ServeError

#: Default priority-class mix: (interactive, standard, batch).
DEFAULT_PRIORITY_WEIGHTS: tuple[float, ...] = (0.15, 0.7, 0.15)


@dataclass(frozen=True)
class Arrival:
    """One request arrival in an open-loop trace.

    Attributes:
        t_s: arrival time in trace (virtual) seconds from the trace origin.
        seq: position within the trace (stable tie-break for equal times).
        user_id: simulated enrolled user issuing the request.
        model: provisioned model name the request targets.
        images: images in the request (its ciphertext batch dimension).
        priority: class 0 (interactive, highest) .. N-1 (batch, lowest).
        image_index: index into the driver's pre-encrypted image pool.
        slo_deadline_s: optional *hard* deadline, seconds after ``t_s``,
            past which the result is worthless (the loop may evict).
    """

    t_s: float
    seq: int
    user_id: int
    model: str
    images: int
    priority: int
    image_index: int
    slo_deadline_s: float | None = None


@dataclass(frozen=True)
class TrafficTrace:
    """An ordered, seeded arrival trace plus the parameters that made it."""

    arrivals: tuple[Arrival, ...]
    duration_s: float
    seed: int
    kind: str

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self):
        return iter(self.arrivals)

    @property
    def users(self) -> int:
        """Distinct simulated users appearing in the trace."""
        return len({a.user_id for a in self.arrivals})

    @property
    def images(self) -> int:
        return sum(a.images for a in self.arrivals)

    @property
    def rate_rps(self) -> float:
        """Realized arrival rate (requests per trace second)."""
        if self.duration_s <= 0:
            return 0.0
        return len(self.arrivals) / self.duration_s

    def shifted(self, offset_s: float) -> "TrafficTrace":
        """The same trace translated ``offset_s`` later in time.

        The shifted trace nominally spans ``[0, offset_s + duration_s)`` --
        its duration grows by the offset -- so merging it after an earlier
        phase reports the full combined horizon.
        """
        return replace(
            self,
            arrivals=tuple(
                replace(a, t_s=a.t_s + offset_s) for a in self.arrivals
            ),
            duration_s=self.duration_s + offset_s,
        )


def _check_common(rate_rps: float, duration_s: float, users: int,
                  image_pool: int, images_per_request: int,
                  priority_weights: Sequence[float]) -> None:
    if rate_rps <= 0:
        raise ServeError(f"rate_rps must be > 0, got {rate_rps}")
    if duration_s <= 0:
        raise ServeError(f"duration_s must be > 0, got {duration_s}")
    if users < 1:
        raise ServeError(f"users must be >= 1, got {users}")
    if image_pool < 1:
        raise ServeError(f"image_pool must be >= 1, got {image_pool}")
    if images_per_request < 1:
        raise ServeError(f"images_per_request must be >= 1, got {images_per_request}")
    if not priority_weights or any(w < 0 for w in priority_weights):
        raise ServeError("priority_weights must be non-empty and non-negative")
    if sum(priority_weights) <= 0:
        raise ServeError("priority_weights must sum to > 0")


def _draw_arrivals(
    rng: np.random.Generator,
    *,
    phases: Iterable[tuple[float, float, float]],
    users: int,
    model: str,
    image_pool: int,
    images_per_request: int,
    priority_weights: Sequence[float],
    slo_deadline_s: float | None,
    seq_start: int = 0,
) -> list[Arrival]:
    """Draw arrivals over piecewise-constant-rate ``(start, end, rate)``
    phases -- the shared core of the homogeneous and on/off generators."""
    weights = np.asarray(priority_weights, dtype=float)
    weights = weights / weights.sum()
    classes = np.arange(len(weights))
    arrivals: list[Arrival] = []
    seq = seq_start
    for start_s, end_s, rate in phases:
        t = start_s
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= end_s:
                break
            arrivals.append(
                Arrival(
                    t_s=float(t),
                    seq=seq,
                    user_id=int(rng.integers(0, users)),
                    model=model,
                    images=images_per_request,
                    priority=int(rng.choice(classes, p=weights)),
                    image_index=int(rng.integers(0, image_pool)),
                    slo_deadline_s=slo_deadline_s,
                )
            )
            seq += 1
    return arrivals


def poisson_trace(
    seed: int,
    *,
    rate_rps: float,
    duration_s: float,
    users: int = 1000,
    model: str = "digits",
    image_pool: int = 8,
    images_per_request: int = 1,
    priority_weights: Sequence[float] = DEFAULT_PRIORITY_WEIGHTS,
    slo_deadline_s: float | None = None,
) -> TrafficTrace:
    """Homogeneous open-loop Poisson arrivals at ``rate_rps``.

    Same seed and parameters -> the identical trace, arrival for arrival.
    """
    _check_common(rate_rps, duration_s, users, image_pool,
                  images_per_request, priority_weights)
    rng = np.random.default_rng(seed)
    arrivals = _draw_arrivals(
        rng,
        phases=[(0.0, duration_s, rate_rps)],
        users=users,
        model=model,
        image_pool=image_pool,
        images_per_request=images_per_request,
        priority_weights=priority_weights,
        slo_deadline_s=slo_deadline_s,
    )
    return TrafficTrace(tuple(arrivals), duration_s, seed, "poisson")


def bursty_trace(
    seed: int,
    *,
    base_rate_rps: float,
    burst_factor: float = 4.0,
    period_s: float,
    on_fraction: float = 0.5,
    duration_s: float,
    users: int = 1000,
    model: str = "digits",
    image_pool: int = 8,
    images_per_request: int = 1,
    priority_weights: Sequence[float] = DEFAULT_PRIORITY_WEIGHTS,
    slo_deadline_s: float | None = None,
) -> TrafficTrace:
    """On/off modulated Poisson: each ``period_s`` opens with an ON phase
    at ``base_rate_rps * burst_factor`` for ``on_fraction`` of the period,
    then relaxes to ``base_rate_rps``.

    ``burst_factor=4`` with ``on_fraction=0.5`` is the SLO bench's "4x
    burst" acceptance scenario: mean load 2.5x the base rate, peak 4x.
    """
    _check_common(base_rate_rps, duration_s, users, image_pool,
                  images_per_request, priority_weights)
    if burst_factor < 1.0:
        raise ServeError(f"burst_factor must be >= 1, got {burst_factor}")
    if period_s <= 0:
        raise ServeError(f"period_s must be > 0, got {period_s}")
    if not 0.0 < on_fraction < 1.0:
        raise ServeError(f"on_fraction must be in (0, 1), got {on_fraction}")
    rng = np.random.default_rng(seed)
    phases: list[tuple[float, float, float]] = []
    t = 0.0
    while t < duration_s:
        on_end = min(t + period_s * on_fraction, duration_s)
        phases.append((t, on_end, base_rate_rps * burst_factor))
        off_end = min(t + period_s, duration_s)
        if on_end < off_end:
            phases.append((on_end, off_end, base_rate_rps))
        t = off_end
    arrivals = _draw_arrivals(
        rng,
        phases=phases,
        users=users,
        model=model,
        image_pool=image_pool,
        images_per_request=images_per_request,
        priority_weights=priority_weights,
        slo_deadline_s=slo_deadline_s,
    )
    return TrafficTrace(tuple(arrivals), duration_s, seed, "bursty")


def merge(*traces: TrafficTrace) -> TrafficTrace:
    """Interleave traces into one time-ordered trace.

    Ordering is total and deterministic: by arrival time, then by the
    (trace, seq) origin -- equal-time arrivals from different traces never
    reorder between runs.  Sequence numbers are reassigned to the merged
    order; the merged duration is the max of the inputs'.
    """
    if not traces:
        raise ServeError("merge needs at least one trace")
    tagged = [
        (a.t_s, idx, a.seq, a)
        for idx, trace in enumerate(traces)
        for a in trace.arrivals
    ]
    tagged.sort(key=lambda item: item[:3])
    merged = tuple(
        replace(a, seq=new_seq) for new_seq, (_, _, _, a) in enumerate(tagged)
    )
    return TrafficTrace(
        merged,
        max(t.duration_s for t in traces),
        traces[0].seed,
        "+".join(t.kind for t in traces),
    )
