"""Event-driven continuous-batching serving loop for the edge server.

:class:`~repro.serve.scheduler.RequestScheduler` gave the edge server slot
packing, but it is *manually cranked*: somebody must call ``pump()`` for
deadlines to mean anything, there is no admission control, and nothing
answers "what p99 queue wait do a thousand open-loop users see?".  This
module is the missing front end -- a deterministic discrete-event serving
loop that owns the full request lifecycle:

* **Event queue.**  Arrivals, per-request deadline timers, flush
  completions and completion watchdogs live in one heap ordered by
  ``(time, sequence)``.  Time here is the loop's own *virtual* currency --
  seconds on an event timeline that advances only when events dispatch --
  so a trace replayed with the same seed produces bit-identical waits,
  occupancies and shed decisions, independent of how long the real HE
  arithmetic underneath happened to take.  (The :class:`~repro.sgx.clock.
  SimClock` still meters the real+modeled cost of every flush for traces
  and metrics; the loop's timeline is what SLO numbers are quoted in.)
* **Continuous batching.**  While one packed flush is in flight, arrivals
  keep admitting into the next slot group; the moment a flush completes,
  any group that is full -- or whose oldest coalescing deadline has
  expired -- flushes immediately, with no external ``pump()`` and no
  fresh coalescing window imposed on requests that already waited.
* **Admission control.**  Every arrival gets a queue-wait *estimate*
  (in-flight remainder plus backlog flushes ahead of it, via the
  :class:`ServiceTimeModel`), not just a depth check.  Estimates past the
  admission SLO shed the request with a typed
  :class:`~repro.errors.OverloadedError` before its wait can poison the
  tail; the bounded queue sheds with
  :class:`~repro.errors.QueueFullError`.
* **Priorities and eviction.**  Three default classes (0 = interactive
  .. 2 = batch).  Interactive requests are never wait-shed -- under a
  full queue they evict the lowest-priority, latest-deadline queued
  request instead.  Requests carrying a hard ``slo_deadline_s`` are
  evicted with :class:`~repro.errors.DeadlineEvictedError` as soon as no
  future flush can complete them in time.
* **Fault sites.**  ``serve.loop.timer`` (timer storms: duplicated
  deadline timers must dispatch as no-ops) and ``serve.loop.flush_done``
  (a lost completion event: the always-armed watchdog re-delivers the
  finished flush's results).  Both compose with the scheduler-level
  isolation chaos from DESIGN.md §11.

The actual HE work rides the scheduler's shared
:meth:`~repro.serve.scheduler.RequestScheduler.run_batch` flush path, so
everything the chaos suite proves about packed flushes -- per-request
isolation, kernel degradation, typed failure of poisoned requests -- holds
unchanged under the loop, and predictions stay bit-identical to the
synchronous scheduler and the plaintext reference.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import faults
from repro.errors import (
    BatchTooLargeError,
    DeadlineEvictedError,
    OverloadedError,
    QueueFullError,
    ServeError,
)
from repro.obs import metrics, recorder
from repro.obs.context import TraceContext
from repro.serve.scheduler import PendingResponse, _QueuedRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import EdgeServer
    from repro.he.context import Ciphertext
    from repro.serve.scheduler import RequestScheduler
    from repro.serve.traffic import Arrival

#: Spurious timer events injected per ``serve.loop.timer`` fault fire.
TIMER_STORM_SIZE = 8


def _m_admitted():
    return metrics.registry().counter(
        "repro_serve_admitted_total",
        "Requests admitted by the serving loop, by priority class.",
        ("model", "priority"),
    )


def _m_shed():
    return metrics.registry().counter(
        "repro_serve_shed_total",
        "Requests shed at admission (overload = wait estimate past the SLO).",
        ("model", "reason"),
    )


def _m_evicted():
    return metrics.registry().counter(
        "repro_serve_evicted_total",
        "Queued requests evicted (hopeless SLO deadline or displaced).",
        ("model", "priority"),
    )


def _m_events():
    return metrics.registry().counter(
        "repro_serve_loop_events_total",
        "Events dispatched by the serving loop, by kind.",
        ("kind",),
    )


def _m_recovered():
    return metrics.registry().counter(
        "repro_serve_loop_recovered_completions_total",
        "Flush completions delivered by the watchdog after the completion "
        "event was lost.",
    )


def _m_wait_estimate():
    return metrics.registry().histogram(
        "repro_serve_queue_wait_estimate_seconds",
        "Admission-control queue-wait estimate at each arrival.",
        ("model",),
    )


@dataclass(frozen=True)
class ServiceTimeModel:
    """Deterministic flush-duration model on the loop's virtual timeline.

    The loop cannot use measured wall time as its timeline -- it would make
    every SLO number depend on the machine and the run -- so flush service
    time is modeled: a fixed per-flush cost (the five pipeline stages'
    setup plus the pack/activation/unpack enclave crossings) plus a
    per-image slope (the marginal slot's share of the HE arithmetic).  The
    defaults are on the scale the paper's cost model charges a packed
    smoke-config flush; all knobs are plain fields, so benches can
    calibrate them against a measured profile without losing determinism.

    ``workers`` models multicore flush execution (``repro.he.parallel``):
    the per-image HE arithmetic -- the part the pool's work units split --
    divides across workers, while ``base_s`` (enclave crossings, pack/
    unpack, Python dispatch) stays serial, plus a small per-extra-worker
    dispatch cost (``dispatch_s``): Amdahl on the virtual timeline.  With
    ``workers <= 1`` the formula reduces exactly to the historical
    single-process model, keeping every existing trace bit-identical.
    """

    base_s: float = 4e-3
    per_image_s: float = 5e-4
    workers: int = 1
    dispatch_s: float = 1.5e-4

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.per_image_s < 0:
            raise ServeError("service model needs base_s > 0 and per_image_s >= 0")
        if self.workers < 1:
            raise ServeError("service model needs workers >= 1")
        if self.dispatch_s < 0:
            raise ServeError("service model needs dispatch_s >= 0")

    def flush_s(self, images: int) -> float:
        """Modeled duration of one packed flush of ``images`` images."""
        if self.workers <= 1:
            return self.base_s + self.per_image_s * images
        return (
            self.base_s
            + self.per_image_s * images / self.workers
            + self.dispatch_s * (self.workers - 1)
        )


@dataclass
class LoopConfig:
    """Serving-loop policy knobs.

    Attributes:
        window_s: default coalescing deadline for admitted requests (the
            longest a request waits for batch-mates while the server idles).
        max_queue_depth: bound on admitted-but-unflushed requests;
            admissions beyond it shed (or evict, for interactive class).
        admit_wait_slo_s: admission SLO -- arrivals whose queue-wait
            estimate exceeds it are shed with ``OverloadedError`` (the
            interactive class 0 is exempt).
        priority_classes: number of priority classes (0 is highest).
        evict_on_deadline: evict queued requests whose hard SLO deadline
            can no longer be met.
        watchdog_grace_s: extra virtual seconds past a flush's modeled
            completion before the watchdog re-delivers its results.
        service_model: the flush-duration model for the virtual timeline.
    """

    window_s: float = 0.010
    max_queue_depth: int = 256
    admit_wait_slo_s: float = 0.25
    priority_classes: int = 3
    evict_on_deadline: bool = True
    watchdog_grace_s: float = 0.005
    service_model: ServiceTimeModel = field(default_factory=ServiceTimeModel)

    def __post_init__(self) -> None:
        if self.window_s < 0:
            raise ServeError("window_s must be >= 0")
        if self.max_queue_depth < 1:
            raise ServeError("max_queue_depth must be >= 1")
        if self.admit_wait_slo_s <= 0:
            raise ServeError("admit_wait_slo_s must be > 0")
        if self.priority_classes < 1:
            raise ServeError("priority_classes must be >= 1")
        if self.watchdog_grace_s <= 0:
            raise ServeError("watchdog_grace_s must be > 0")


@dataclass
class LoopStats:
    """Monotonic counters over the loop's lifetime."""

    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    shed_overload: int = 0
    shed_queue_full: int = 0
    evicted: int = 0
    served: int = 0
    failed: int = 0
    flushes: int = 0
    packed_images: int = 0
    lost_completions: int = 0
    recovered_completions: int = 0
    stale_events: int = 0
    peak_queue_depth: int = 0


class LoopTicket(PendingResponse):
    """A request's future under the serving loop.

    Extends :class:`~repro.serve.scheduler.PendingResponse` with the
    open-loop metadata the SLO bench aggregates.  Terminal states: a
    :class:`~repro.core.server.ServedResult`, or one typed error --
    ``OverloadedError`` / ``QueueFullError`` (shed at admission),
    ``DeadlineEvictedError`` (evicted from the queue),
    ``RequestFailedError`` (its flush died), or the scheduler's validation
    errors.  A ticket never resolves twice and never hangs: every admitted
    request is owned by exactly one queue entry or in-flight flush, each of
    which delivers exactly one outcome.
    """

    def __init__(
        self,
        request_id: int,
        model: str,
        *,
        arrival_s: float,
        priority: int,
        user_id: int | None,
        image_index: int | None,
    ) -> None:
        super().__init__(request_id, model)
        self.arrival_s = arrival_s
        self.priority = priority
        self.user_id = user_id
        self.image_index = image_index
        self.images = 0
        self.admitted = False
        self.shed_reason: str | None = None
        self.queue_wait_s: float | None = None
        self.completed_at_s: float | None = None

    @property
    def served(self) -> bool:
        return self._result is not None

    @property
    def error(self) -> BaseException | None:
        return self._error


@dataclass
class _Admitted:
    """One admitted request waiting in a model's slot group."""

    ticket: LoopTicket
    ct: "Ciphertext"
    images: int
    admitted_at: float
    flush_by: float
    slo_deadline_at: float | None
    depth_at_entry: int
    context: "TraceContext | None" = None

    def sort_key(self) -> tuple:
        # Priority class first, then FIFO within a class.
        return (self.ticket.priority, self.ticket.request_id)


@dataclass
class _Inflight:
    """One flush whose results await (virtual-time) delivery."""

    generation: int
    model: str
    outcomes: list
    started_at: float
    done_at: float
    images: int
    replica: int | None = None
    delivered: bool = False


class ServingLoop:
    """Deterministic event-driven continuous-batching front end.

    Args:
        server: the :class:`~repro.core.server.EdgeServer` whose scheduler
            executes the packed flushes (its ``ServeConfig.max_batch``
            bounds the slot group size).
        config: loop policy (a default :class:`LoopConfig` if None).

    Drive it either programmatically (:meth:`submit` then :meth:`run`) or
    from a :class:`~repro.serve.traffic.TrafficTrace` (:meth:`offer` each
    arrival, then :meth:`run`).  ``run()`` dispatches events until the heap
    drains; afterwards every ticket is resolved -- a result or a typed
    error -- because admitted requests always hold a live timer, and
    in-flight flushes always hold a completion or watchdog event.
    """

    def __init__(self, server: "EdgeServer", config: LoopConfig | None = None) -> None:
        self.server = server
        self.scheduler: "RequestScheduler" = server.scheduler
        self.config = config if config is not None else LoopConfig()
        self.capacity = self.scheduler.capacity
        self.stats = LoopStats()
        self.now_s = 0.0
        self.tickets: list[LoopTicket] = []
        self.flush_log: list[dict] = []
        self._events: list[tuple[float, int, str, tuple]] = []
        self._event_seq = 0
        self._queues: dict[str, list[_Admitted]] = {}
        # One entry per flush in flight, keyed by generation.  With an
        # enclave fleet, up to one flush per live replica runs concurrently;
        # without one the dict holds at most a single entry, reproducing the
        # single-slot loop bit-for-bit.
        self._inflight: dict[int, _Inflight] = {}
        self._generation = 0
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted (unflushed) requests across all models."""
        return sum(len(bucket) for bucket in self._queues.values())

    def pending_images(self, model: str) -> int:
        return sum(r.images for r in self._queues.get(model, ()))

    # ------------------------------------------------------------------
    # fleet awareness
    # ------------------------------------------------------------------
    def _fleet(self):
        return getattr(self.server, "fleet", None)

    def _fleet_size(self) -> int:
        """Live replicas available for concurrent flushes (1 without a
        fleet -- the loop then behaves exactly like its single-slot
        ancestor)."""
        fleet = self._fleet()
        return max(1, fleet.size) if fleet is not None else 1

    def _busy_replicas(self) -> set:
        return {
            fl.replica for fl in self._inflight.values() if fl.replica is not None
        }

    def _has_free_replica(self) -> bool:
        fleet = self._fleet()
        if fleet is None:
            return not self._inflight
        live = fleet.live_replicas()
        if not live:
            # Every replica retired: let one flush attempt through so its
            # requests resolve with typed failures instead of hanging.
            return not self._inflight
        busy = self._busy_replicas()
        return any(rid not in busy for rid in live)

    def submit(
        self,
        model: str,
        ct: "Ciphertext",
        *,
        at_s: float | None = None,
        priority: int = 1,
        user_id: int | None = None,
        image_index: int | None = None,
        deadline_s: float | None = None,
        slo_deadline_s: float | None = None,
        context: "TraceContext | None" = None,
    ) -> LoopTicket:
        """Schedule one request's arrival on the event timeline.

        Args:
            at_s: arrival time in loop seconds (clamped to now; default
                now) -- the admission decision happens when the arrival
                *dispatches*, against the queue state of that instant.
            priority: class ``0`` (interactive) .. ``priority_classes-1``.
            deadline_s: coalescing window override (config ``window_s``
                when None).
            slo_deadline_s: optional hard deadline after which the result
                is worthless; such requests are evictable once hopeless.
            context: trace context naming the request in the process-wide
                trace tree (the client SDK supplies one on its requests);
                when None a deterministic fallback is derived from the
                model name and loop request id.

        Raises:
            ServeError: ``priority`` is out of range or a deadline is
                negative (caller bugs fail fast; *traffic* conditions --
                overload, malformed ciphertexts -- resolve the returned
                ticket with a typed error instead of raising here).
        """
        if not 0 <= priority < self.config.priority_classes:
            raise ServeError(
                f"priority {priority} out of range "
                f"[0, {self.config.priority_classes})"
            )
        if deadline_s is not None and deadline_s < 0:
            raise ServeError("deadline_s must be >= 0")
        if slo_deadline_s is not None and slo_deadline_s <= 0:
            raise ServeError("slo_deadline_s must be > 0")
        arrival_s = self.now_s if at_s is None else max(float(at_s), self.now_s)
        ticket = LoopTicket(
            self._next_request_id,
            model,
            arrival_s=arrival_s,
            priority=priority,
            user_id=user_id,
            image_index=image_index,
        )
        if context is None:
            context = TraceContext.derive(
                f"loop:{model}", self._next_request_id,
                parent_id=f"loop/submit-{self._next_request_id}",
            )
        self._next_request_id += 1
        self.tickets.append(ticket)
        self._push(
            arrival_s, "arrival", (ticket, ct, deadline_s, slo_deadline_s, context)
        )
        return ticket

    def offer(self, arrival: "Arrival", ct: "Ciphertext") -> LoopTicket:
        """Bridge one :class:`~repro.serve.traffic.Arrival` onto the loop."""
        return self.submit(
            arrival.model,
            ct,
            at_s=arrival.t_s,
            priority=arrival.priority,
            user_id=arrival.user_id,
            image_index=arrival.image_index,
            slo_deadline_s=arrival.slo_deadline_s,
        )

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------
    def _push(self, at_s: float, kind: str, payload: tuple) -> None:
        heapq.heappush(self._events, (at_s, self._event_seq, kind, payload))
        self._event_seq += 1

    def run(self, until_s: float | None = None) -> int:
        """Dispatch events in timeline order; returns how many ran.

        With ``until_s`` given, only events at or before it dispatch (and
        the loop's clock advances no further); otherwise the heap drains
        completely, which resolves every outstanding ticket.
        """
        dispatched = 0
        events_metric = _m_events()
        while self._events:
            if until_s is not None and self._events[0][0] > until_s:
                break
            at_s, _, kind, payload = heapq.heappop(self._events)
            self.now_s = max(self.now_s, at_s)
            events_metric.labels(kind=kind).inc()
            if kind == "arrival":
                self._on_arrival(*payload)
            elif kind == "timer":
                self._on_timer(*payload)
            elif kind == "flush_done":
                self._on_flush_done(payload[0], via_watchdog=False)
            else:  # watchdog
                self._on_watchdog(payload[0])
            dispatched += 1
        if until_s is not None:
            self.now_s = max(self.now_s, until_s)
        return dispatched

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def queue_wait_estimate(self, model: str, images: int) -> float:
        """Estimated queue wait an arrival of ``images`` would see now.

        In-flight remainder, plus one modeled full-capacity flush per
        backlog group ahead of the request, plus the idle coalescing window
        when nothing is in flight (the worst case for an empty server).
        This is the admission signal: it tracks *wait*, not depth, so a
        queue of large requests sheds earlier than a queue of singles.

        With a fleet of N replicas, backlog groups drain N at a time and
        the in-flight remainder only matters when every replica is busy;
        at fleet size 1 the formula reduces bit-exactly to the single-slot
        loop's estimate.
        """
        fleet_size = self._fleet_size()
        inflight = len(self._inflight)
        free_n = max(0, fleet_size - inflight)
        if free_n > 0 or not self._inflight:
            remaining = 0.0
        else:
            remaining = max(
                0.0,
                min(fl.done_at for fl in self._inflight.values()) - self.now_s,
            )
        queued = self.pending_images(model) + images
        groups_ahead = max(0, math.ceil(queued / self.capacity) - max(free_n, 1))
        estimate = remaining + math.ceil(
            groups_ahead / fleet_size
        ) * self.config.service_model.flush_s(self.capacity)
        if not self._inflight and queued < self.capacity:
            estimate += self.config.window_s
        return estimate

    def _shed(self, ticket: LoopTicket, reason: str, error: ServeError) -> None:
        ticket.shed_reason = reason
        ticket._fail(error)
        if reason == "overload":
            self.stats.shed_overload += 1
        else:
            self.stats.shed_queue_full += 1
        _m_shed().labels(model=ticket.model, reason=reason).inc()
        recorder.record(
            "serve.shed",
            severity="warn",
            t_s=self.now_s,
            model=ticket.model,
            request_id=ticket.request_id,
            reason=reason,
        )

    def _evict(self, record: _Admitted, why: str) -> None:
        self._queues[record.ticket.model].remove(record)
        record.ticket._fail(
            DeadlineEvictedError(
                f"request {record.ticket.request_id} "
                f"({record.ticket.model!r}) evicted: {why}"
            )
        )
        self.stats.evicted += 1
        _m_evicted().labels(
            model=record.ticket.model, priority=record.ticket.priority
        ).inc()
        recorder.record(
            "serve.evict",
            severity="warn",
            t_s=self.now_s,
            model=record.ticket.model,
            request_id=record.ticket.request_id,
            why=why,
        )

    def _eviction_candidate(self) -> _Admitted | None:
        """Lowest-priority, latest-deadline queued request (never class 0)."""
        candidates = [
            r
            for bucket in self._queues.values()
            for r in bucket
            if r.ticket.priority > 0
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda r: (r.ticket.priority, r.flush_by, r.ticket.request_id),
        )

    def _on_arrival(
        self,
        ticket: LoopTicket,
        ct: "Ciphertext",
        deadline_s: float | None,
        slo_deadline_s: float | None,
        context: "TraceContext | None" = None,
    ) -> None:
        self.stats.arrivals += 1
        try:
            images = self.scheduler.validate_request(ticket.model, ct)
            if images > self.capacity:
                raise BatchTooLargeError(
                    f"request of {images} images exceeds the loop's slot "
                    f"group capacity {self.capacity}"
                )
        except ServeError as exc:
            self.stats.rejected += 1
            ticket.shed_reason = "rejected"
            ticket._fail(exc)
            return
        ticket.images = images
        estimate = self.queue_wait_estimate(ticket.model, images)
        _m_wait_estimate().labels(model=ticket.model).observe(estimate)
        if self.queue_depth >= self.config.max_queue_depth:
            victim = self._eviction_candidate() if ticket.priority == 0 else None
            if victim is None:
                self._shed(
                    ticket,
                    "queue_full",
                    QueueFullError(
                        f"loop queue at its bound of "
                        f"{self.config.max_queue_depth} requests"
                    ),
                )
                return
            self._evict(victim, "displaced by an interactive request under a full queue")
        elif estimate > self.config.admit_wait_slo_s and ticket.priority > 0:
            self._shed(
                ticket,
                "overload",
                OverloadedError(
                    f"estimated queue wait {estimate * 1e3:.1f} ms exceeds "
                    f"the admission SLO "
                    f"{self.config.admit_wait_slo_s * 1e3:.1f} ms"
                ),
            )
            return
        window = self.config.window_s if deadline_s is None else deadline_s
        record = _Admitted(
            ticket=ticket,
            ct=ct,
            images=images,
            admitted_at=self.now_s,
            flush_by=self.now_s + window,
            slo_deadline_at=(
                None if slo_deadline_s is None else self.now_s + slo_deadline_s
            ),
            depth_at_entry=self.queue_depth,
            context=context,
        )
        self._queues.setdefault(ticket.model, []).append(record)
        ticket.admitted = True
        self.stats.admitted += 1
        self.stats.peak_queue_depth = max(self.stats.peak_queue_depth, self.queue_depth)
        _m_admitted().labels(model=ticket.model, priority=ticket.priority).inc()
        recorder.record(
            "serve.admit",
            t_s=self.now_s,
            model=ticket.model,
            request_id=ticket.request_id,
            priority=ticket.priority,
            trace_id=None if context is None else context.trace_id,
        )
        self._arm_timer(record)
        if (
            self._inflight
            and record.slo_deadline_at is not None
            and not self._has_free_replica()
        ):
            # Hopelessness is decidable the moment the request queues behind
            # a fully-busy fleet: evict now rather than serve a dead result.
            self._evict_hopeless(
                ticket.model,
                min(fl.done_at for fl in self._inflight.values()),
            )
        if self._has_free_replica() and (
            self.pending_images(ticket.model) >= self.capacity
            or record.flush_by <= self.now_s
        ):
            self._start_flush(ticket.model)

    # ------------------------------------------------------------------
    # timers and watchdogs
    # ------------------------------------------------------------------
    def _arm_timer(self, record: _Admitted) -> None:
        self._push(record.flush_by, "timer", (record,))
        event = faults.poll("serve.loop.timer", name=record.ticket.model)
        if event is not None:
            # Timer storm: the site duplicates this deadline timer; the
            # dispatch path must treat every duplicate as a no-op.
            for _ in range(TIMER_STORM_SIZE):
                self._push(record.flush_by, "timer", (record,))

    def _on_timer(self, record: _Admitted) -> None:
        bucket = self._queues.get(record.ticket.model, [])
        if record not in bucket:
            # Already flushed, evicted, or a storm duplicate: idempotent.
            self.stats.stale_events += 1
            return
        if not self._has_free_replica():
            # Every replica is busy; the completion handler flushes overdue
            # groups the moment one frees up.
            return
        self._start_flush(record.ticket.model)

    def _on_watchdog(self, generation: int) -> None:
        fl = self._inflight.get(generation)
        if fl is None or fl.delivered:
            self.stats.stale_events += 1
            return
        # The completion event for this flush never arrived (lost to a
        # fault): deliver its results now, late but never never.
        self.stats.recovered_completions += 1
        _m_recovered().inc()
        recorder.record(
            "serve.watchdog_recovered",
            severity="warn",
            t_s=self.now_s,
            generation=generation,
            model=fl.model,
        )
        self._on_flush_done(generation, via_watchdog=True)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def _select_group(self, model: str) -> list[_Admitted]:
        """Pop the next slot group: priority order, capacity-bounded."""
        bucket = self._queues.get(model, [])
        bucket.sort(key=_Admitted.sort_key)
        selected: list[_Admitted] = []
        images = 0
        for record in list(bucket):
            if images + record.images > self.capacity:
                continue
            selected.append(record)
            bucket.remove(record)
            images += record.images
            if images >= self.capacity:
                break
        return selected

    def _evict_hopeless(self, model: str, done_at: float) -> None:
        """Evict queued requests whose hard SLO deadline no future flush
        can meet (earliest completion = this flush's end plus one more
        modeled flush)."""
        if not self.config.evict_on_deadline:
            return
        bucket = self._queues.get(model, [])
        pending = sum(r.images for r in bucket)
        next_flush_s = self.config.service_model.flush_s(
            min(max(pending, 1), self.capacity)
        )
        earliest_completion = done_at + next_flush_s
        for record in list(bucket):
            if (
                record.slo_deadline_at is not None
                and earliest_completion > record.slo_deadline_at
            ):
                self._evict(
                    record,
                    f"earliest completion {earliest_completion * 1e3:.1f} ms "
                    f"is past its SLO deadline "
                    f"{record.slo_deadline_at * 1e3:.1f} ms",
                )

    def _start_flush(self, model: str) -> None:
        fleet = self._fleet()
        replica: int | None = None
        if fleet is None:
            if self._inflight:
                return
        else:
            replica = fleet.route(model, busy=self._busy_replicas())
            if replica is None and fleet.live_replicas():
                # Every live replica already has a flush in flight.
                return
            if self._inflight and replica is None:
                return
        selected = self._select_group(model)
        if not selected:
            return
        started_at = self.now_s
        images = sum(r.images for r in selected)
        requests = [
            _QueuedRequest(
                request_id=r.ticket.request_id,
                model=model,
                ct=r.ct,
                batch=r.images,
                enqueued_at=r.admitted_at,
                deadline_at=r.flush_by,
                queue_depth_at_submit=r.depth_at_entry,
                response=r.ticket,
                context=r.context,
            )
            for r in selected
        ]
        for r in selected:
            r.ticket.queue_wait_s = started_at - r.admitted_at
        self._generation += 1
        generation = self._generation
        recorder.record(
            "serve.flush_start",
            t_s=started_at,
            model=model,
            generation=generation,
            replica=replica,
            requests=len(requests),
            images=images,
            request_ids=[r.request_id for r in requests],
        )
        # Real HE execution happens here, at flush start, through the
        # scheduler's shared isolation-hardened path; delivery of the
        # outcomes waits for the (virtual) completion event.  The scheduler
        # may fail the batch over to a survivor mid-flush, so the replica
        # recorded as busy is the one that actually served it.
        outcomes = self.scheduler.run_batch(
            model, requests, flushed_at=started_at, replica=replica,
            generation=generation,
        )
        effective = replica
        for _, outcome in outcomes:
            if not isinstance(outcome, BaseException):
                served_on = getattr(outcome, "replica", None)
                if served_on is not None:
                    effective = served_on
                break
        service_s = self.config.service_model.flush_s(images)
        done_at = started_at + service_s
        self._inflight[generation] = _Inflight(
            generation=generation,
            model=model,
            outcomes=outcomes,
            started_at=started_at,
            done_at=done_at,
            images=images,
            replica=effective,
        )
        self.stats.flushes += 1
        self.stats.packed_images += images
        self.flush_log.append(
            {
                "model": model,
                "started_at_s": started_at,
                "done_at_s": done_at,
                "images": images,
                "requests": len(requests),
                "occupancy": images / self.capacity,
                "replica": effective,
            }
        )
        if self._has_free_replica():
            horizon = self.now_s
        else:
            horizon = min(fl.done_at for fl in self._inflight.values())
        self._evict_hopeless(model, horizon)
        lost = faults.poll("serve.loop.flush_done", name=model)
        if lost is not None:
            self.stats.lost_completions += 1
            recorder.record(
                "serve.flush_done_lost",
                severity="warn",
                t_s=self.now_s,
                model=model,
                generation=generation,
            )
        else:
            self._push(done_at, "flush_done", (generation,))
        # The watchdog is always armed: it is the loop's liveness backstop,
        # not a fault-mode-only path.
        self._push(
            done_at + self.config.watchdog_grace_s, "watchdog", (generation,)
        )

    def _on_flush_done(self, generation: int, *, via_watchdog: bool) -> None:
        fl = self._inflight.pop(generation, None)
        if fl is None or fl.delivered:
            self.stats.stale_events += 1
            return
        fl.delivered = True
        served = failed = 0
        for request, outcome in fl.outcomes:
            ticket: LoopTicket = request.response
            ticket.completed_at_s = self.now_s
            if isinstance(outcome, BaseException):
                ticket._fail(outcome)
                self.stats.failed += 1
                failed += 1
            else:
                ticket._resolve(outcome)
                self.stats.served += 1
                served += 1
        recorder.record(
            "serve.flush_done",
            t_s=self.now_s,
            model=fl.model,
            generation=generation,
            replica=fl.replica,
            served=served,
            failed=failed,
            via_watchdog=via_watchdog,
        )
        self._maybe_continue()

    def _maybe_continue(self) -> None:
        """Continuous batching: the instant a replica frees up, flush any
        group that is full or overdue -- no fresh window for requests that
        already waited out theirs.  With a fleet, keep starting flushes
        until every free replica is used or nothing is eligible."""
        while self._has_free_replica():
            started = self.stats.flushes
            for model in sorted(self._queues):
                bucket = self._queues[model]
                if not bucket:
                    continue
                if (
                    self.pending_images(model) >= self.capacity
                    or min(r.flush_by for r in bucket) <= self.now_s
                ):
                    self._start_flush(model)
                    break
            if self.stats.flushes == started:
                return

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Aggregate SLO view over every ticket the loop has owned.

        All numbers live on the loop's virtual timeline, so a seeded trace
        reproduces this dict bit-for-bit.
        """
        import numpy as np

        waits = [t.queue_wait_s for t in self.tickets if t.served]
        occupancies = [f["occupancy"] for f in self.flush_log]
        served_images = sum(t.images for t in self.tickets if t.served)
        completions = [
            t.completed_at_s for t in self.tickets if t.completed_at_s is not None
        ]
        first_arrival = min((t.arrival_s for t in self.tickets), default=0.0)
        makespan = max(completions, default=0.0) - first_arrival
        busy_s = sum(f["done_at_s"] - f["started_at_s"] for f in self.flush_log)
        shed = self.stats.shed_overload + self.stats.shed_queue_full
        return {
            "arrivals": self.stats.arrivals,
            "served": self.stats.served,
            "failed": self.stats.failed,
            "rejected": self.stats.rejected,
            "shed": shed,
            "shed_rate": shed / max(1, self.stats.arrivals),
            "evicted": self.stats.evicted,
            "flushes": self.stats.flushes,
            "served_images": served_images,
            "makespan_s": makespan,
            "busy_s": busy_s,
            "images_per_s": served_images / makespan if makespan > 0 else 0.0,
            "images_per_busy_s": (
                self.stats.packed_images / busy_s if busy_s > 0 else 0.0
            ),
            "replicas": self._fleet_size(),
            "workers": self.config.service_model.workers,
            "occupancy_mean": float(np.mean(occupancies)) if occupancies else 0.0,
            "p50_queue_wait_s": float(np.percentile(waits, 50)) if waits else 0.0,
            "p99_queue_wait_s": float(np.percentile(waits, 99)) if waits else 0.0,
            "max_queue_wait_s": max(waits, default=0.0),
            "recovered_completions": self.stats.recovered_completions,
        }
