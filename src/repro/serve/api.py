"""The serving request/response API: one frozen request, one result type.

``EdgeServer.infer`` grew a keyword soup over six PRs -- ``pack=``,
``deadline_ms=``, plus the loop-only knobs (priority, SLO deadline) that
could not be expressed through the facade at all.  This module collapses
that surface into two types:

* :class:`InferenceRequest` -- a frozen, validated description of one
  encrypted inference: which model, which ciphertext, and the serving
  policy riding along (packing, coalescing deadline, priority class, hard
  SLO deadline).  Frozen so a request can be routed, retried across
  replicas, or re-dispatched after a failover without aliasing surprises.
* :class:`InferenceResult` -- what the server hands back: *encrypted*
  logits plus timing and serving metadata (request id, packed batch size,
  queue wait, and the fleet replica that executed the flush).  This is the
  same object the pre-fleet code called ``ServedResult``; that name remains
  as an alias in :mod:`repro.core.server` so existing callers and
  ``isinstance`` checks keep working.

Both the synchronous facade (``EdgeServer.infer(request)``), the serving
loop (``ServingLoop.submit_request``) and the client SDK
(:mod:`repro.client`) speak these types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ServeError
from repro.obs.context import TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import InferenceResult as TimingResult
    from repro.he.context import Ciphertext


@dataclass(frozen=True)
class InferenceRequest:
    """One encrypted inference request, with its serving policy.

    Attributes:
        model: a provisioned model name.
        ciphertext: scalar-encoded ``(B, C, H, W)`` pixel ciphertext from
            the user's session (``UserSession.encrypt`` or the client SDK).
        pack: route through the slot-packing scheduler (the synchronous
            facade drains the bucket, so the call still returns a result).
        deadline_ms: coalescing deadline in simulated milliseconds for the
            packed path (requires ``pack=True``; the scheduler's
            ``window_s`` applies when None).
        priority: class ``0`` (interactive) .. ``priority_classes - 1``;
            only meaningful to the event-driven serving loop.
        slo_deadline_ms: optional hard deadline (milliseconds after
            arrival) past which the result is worthless; loop-only -- such
            requests become evictable once no future flush can make it.
        context: optional :class:`~repro.obs.context.TraceContext` naming
            this request in the process-wide trace tree (the client SDK
            injects one; serving front ends derive a deterministic
            fallback when absent).
    """

    model: str
    ciphertext: "Ciphertext"
    pack: bool = False
    deadline_ms: float | None = None
    priority: int = 1
    slo_deadline_ms: float | None = None
    context: TraceContext | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.model, str) or not self.model:
            raise ServeError("InferenceRequest.model must be a non-empty string")
        if self.context is not None and not isinstance(self.context, TraceContext):
            raise ServeError("InferenceRequest.context must be a TraceContext")
        if self.deadline_ms is not None and not self.pack:
            raise ServeError("deadline_ms is only meaningful with pack=True")
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ServeError("deadline_ms must be >= 0")
        if self.priority < 0:
            raise ServeError("priority must be >= 0")
        if self.slo_deadline_ms is not None and self.slo_deadline_ms <= 0:
            raise ServeError("slo_deadline_ms must be > 0")

    @property
    def deadline_s(self) -> float | None:
        return None if self.deadline_ms is None else self.deadline_ms / 1000.0

    @property
    def slo_deadline_s(self) -> float | None:
        return None if self.slo_deadline_ms is None else self.slo_deadline_ms / 1000.0


@dataclass
class InferenceResult:
    """What the server returns: *encrypted* logits plus serving metadata.

    Requests served through the packing scheduler additionally carry their
    serving metadata: ``request_id``, the total ``packed_batch`` they
    shared slots with, the simulated seconds spent coalescing
    (``queue_wait_s``), and the fleet ``replica`` whose enclave executed
    the flush.  Direct ``infer`` calls leave these at defaults.
    """

    logits_ct: "Ciphertext"
    timing: "TimingResult"
    request_id: int | None = None
    packed_batch: int = 0
    queue_wait_s: float = 0.0
    replica: int | None = None
    context: TraceContext | None = None


__all__ = ["InferenceRequest", "InferenceResult"]
