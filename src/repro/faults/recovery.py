"""Crash recovery: the enclave supervisor and its retry policy.

The paper's framework makes one enclave the key authority *and* plaintext
co-processor -- if it crashes mid-inference, every pipeline stalls and,
naively, the HE keys every enrolled user holds become unusable (a restarted
enclave would generate fresh ones).  The supervisor closes that gap with
the machinery a production deployment would use:

1. after ``generate_keys`` it immediately asks the enclave to *seal* its FV
   key pair (``snapshot_keys``) -- the blob is recoverable only by the same
   MRENCLAVE on the same platform, so persisting it to untrusted storage
   leaks nothing;
2. on an AEX-style crash (:class:`~repro.errors.EnclaveCrashed` -- and only
   that; a deliberate ``destroy()`` is never resurrected) it charges an
   exponential backoff to the *simulated* clock, reloads the enclave class,
   restores the sealed keys (``restore_keys``), and **re-attests** the new
   instance through the platform's quoting chain before trusting it;
3. the repaired handle re-issues the failed ECALL; enrolled users'
   ciphertexts remain decryptable because the restored key pair is
   bit-identical.

Every recovery action is recorded as a ``recovery/enclave_restart`` span on
the platform tracer, so traces show not just *that* a run degraded but what
it cost.  All timing flows through :class:`~repro.sgx.clock.SimClock` --
there are no wall-clock sleeps, which is what keeps the chaos suite
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import (
    AttestationError,
    EnclaveCrashed,
    RecoveryExhausted,
    SealingError,
)
from repro.obs import context as obs_context
from repro.obs import recorder
from repro.obs.context import TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sgx.enclave import Enclave, EnclaveHandle, SgxPlatform
    from repro.sgx.measurement import Measurement
    from repro.sgx.sealing import SealedBlob, SealingPolicy


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff policy for crashed ECALLs.

    Attributes:
        max_attempts: total tries per ECALL (first call + retries).
        backoff_s: simulated seconds charged before the first restart.
        backoff_factor: multiplier per subsequent restart.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")

    def delay_s(self, restart: int) -> float:
        """Backoff before the ``restart``-th restart (1-based)."""
        return self.backoff_s * self.backoff_factor ** (restart - 1)


def run_with_kernel_degradation(tracer, scheme: str, fn):
    """Run one inference with graceful FUSED -> REFERENCE degradation.

    ``fn`` is the pipeline's single-shot inference; the kernel equivalence
    guard (:func:`repro.he.kernels.guard`) is consulted first.  If it trips
    -- :class:`~repro.errors.KernelGuardError`, only reachable through an
    armed fault plan -- the library permanently falls back to the reference
    profile, records a ``recovery/kernel_degrade`` span, and retries once.
    Both profiles are bit-identical by construction, so the caller observes
    the same logits either way; what changes is the performance profile,
    which the trace records.
    """
    from repro.errors import KernelGuardError
    from repro.he import kernels
    from repro.obs import metrics

    kernels.record_active_profile()
    try:
        kernels.guard(scheme)
        return fn()
    except KernelGuardError as trip:
        with tracer.span(
            "recovery/kernel_degrade", kind="span", scheme=scheme, error=str(trip)
        ):
            kernels.degrade_to_reference()
            metrics.registry().counter(
                "repro_recovery_kernel_degradations_total",
                "FUSED -> REFERENCE kernel profile degradations.",
                ("scheme",),
            ).labels(scheme=scheme).inc()
        return fn()


class EnclaveSupervisor:
    """A crash-aware drop-in for :class:`~repro.sgx.enclave.EnclaveHandle`.

    Exposes the same surface pipelines use (``ecall``, ``seal``/``unseal``,
    ``create_report``, ``side_channel``, ``measurement``, ``destroy``) while
    transparently restarting the enclave on injected or genuine
    :class:`~repro.errors.EnclaveCrashed` failures.  One side-channel log is
    shared across restarts so crossing accounting stays monotonic.

    Args:
        platform: the simulated SGX machine.
        enclave_class: trusted code to (re)load.
        *args, **kwargs: forwarded to the enclave constructor on every
            (re)load -- a deterministic seed here makes restarted key
            generation reproduce the fault-free keys exactly.
        trusted: False supervises a FakeSGX handle (same recovery path).
        policy: retry/backoff policy (defaults apply when omitted).
        replica: fleet replica id this supervisor runs as (0 for the
            single-enclave deployment).  Stamped as a label on the restart
            and backoff metric families so fleet restarts never alias into
            one series.
    """

    def __init__(
        self,
        platform: "SgxPlatform",
        enclave_class: type["Enclave"],
        *args: Any,
        trusted: bool = True,
        policy: RetryPolicy | None = None,
        replica: int = 0,
        **kwargs: Any,
    ) -> None:
        self._platform = platform
        self._enclave_class = enclave_class
        self._ctor_args = args
        self._ctor_kwargs = kwargs
        self._trusted = trusted
        self.policy = policy if policy is not None else RetryPolicy()
        self.replica = int(replica)
        self._handle: "EnclaveHandle" = platform.load_enclave(
            enclave_class, *args, trusted=trusted, **kwargs
        )
        self.side_channel = self._handle.side_channel
        self.restarts = 0
        self._sealed_keys: "SealedBlob | None" = None
        self._quoting = None
        self._verifier = None

    # ------------------------------------------------------------------
    # the EnclaveHandle surface
    # ------------------------------------------------------------------
    @property
    def platform(self) -> "SgxPlatform":
        return self._platform

    @property
    def trusted(self) -> bool:
        return self._handle.trusted

    @property
    def measurement(self) -> "Measurement":
        return self._handle.measurement

    @property
    def handle(self) -> "EnclaveHandle":
        """The currently live handle (changes across restarts)."""
        return self._handle

    def seal(self, data: bytes, policy: "SealingPolicy | None" = None) -> "SealedBlob":
        if policy is None:
            return self._handle.seal(data)
        return self._handle.seal(data, policy)

    def unseal(self, blob: "SealedBlob") -> bytes:
        return self._handle.unseal(blob)

    def create_report(self, user_data: bytes):
        return self._handle.create_report(user_data)

    def destroy(self) -> None:
        """Deliberate teardown -- the supervisor will NOT resurrect it."""
        self._handle.destroy()

    @property
    def sealed_keys(self) -> "SealedBlob | None":
        """The sealed FV key snapshot restarts (and fleet joins) restore
        from; ``None`` until ``generate_keys`` has run."""
        return self._sealed_keys

    def adopt_sealed_keys(self, blob: "SealedBlob") -> None:
        """Adopt a sealed key snapshot produced by another supervisor of the
        same enclave class on the same platform (sealed-key migration): this
        supervisor's own crash restarts will restore from it."""
        self._sealed_keys = blob

    # ------------------------------------------------------------------
    # the resilient ECALL path
    # ------------------------------------------------------------------
    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Issue an ECALL, restarting the enclave on crashes.

        Raises:
            RecoveryExhausted: the retry policy gave up, or a restart
                itself failed (unsealable keys, re-attestation rejected).
            EnclaveNotInitialized: the handle was deliberately destroyed.
        """
        policy = self.policy
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = self._handle.ecall(name, *args, **kwargs)
                if name == "generate_keys":
                    # Snapshot inside the retried region: a crash anywhere
                    # between keygen and snapshot re-runs keygen, which is
                    # consistent because no user has seen the keys yet.
                    self._sealed_keys = self._handle.ecall("snapshot_keys")
                return result
            except EnclaveCrashed as crash:
                if attempt >= policy.max_attempts:
                    self._exhausted(name, f"still crashing after {attempt} attempts")
                    raise RecoveryExhausted(
                        f"ECALL {name!r} still crashing after {attempt} attempts"
                    ) from crash
                try:
                    self._restart(name, attempt, crash)
                except EnclaveCrashed as restart_crash:
                    # The restart sequence itself was hit; spend an attempt
                    # and come around again if any remain.
                    if attempt + 1 >= policy.max_attempts:
                        self._exhausted(name, "restart keeps crashing")
                        raise RecoveryExhausted(
                            f"enclave restart for ECALL {name!r} keeps crashing"
                        ) from restart_crash
                except (SealingError, AttestationError) as fatal:
                    self._exhausted(name, f"unrecoverable restart: {fatal}")
                    raise RecoveryExhausted(
                        f"enclave restart for ECALL {name!r} is unrecoverable: "
                        f"{fatal}"
                    ) from fatal
        raise AssertionError("unreachable")  # pragma: no cover

    def _exhausted(self, ecall_name: str, why: str) -> None:
        """Terminal flight-recorder event (with dump, when configured)
        emitted just before a ``RecoveryExhausted`` raise."""
        recorder.terminal(
            "recovery.exhausted",
            t_s=self._platform.clock.now_s,
            ecall=ecall_name,
            replica=self.replica,
            restarts=self.restarts,
            why=why,
        )

    # ------------------------------------------------------------------
    # restart internals
    # ------------------------------------------------------------------
    def _restart(self, ecall_name: str, attempt: int, crash: EnclaveCrashed) -> None:
        """Backoff, reload, restore sealed keys, re-attest -- as one traced
        recovery action."""
        restart = self.restarts + 1
        with self._platform.tracer.span(
            "recovery/enclave_restart",
            kind="span",
            side_channel=self.side_channel,
            ecall=ecall_name,
            attempt=attempt,
            restart=restart,
            replica=self.replica,
            error=str(crash),
        ):
            from repro.obs import metrics

            registry = metrics.registry()
            # Both families carry the replica label: in a fleet, restarts of
            # different replicas must never alias into one series (the delta
            # a dashboard or delta-sync reads off a single series would
            # otherwise mix independent replicas' backoff budgets).
            registry.counter(
                "repro_recovery_enclave_restarts_total",
                "Enclave restarts performed by the supervisor, by failed "
                "ECALL and fleet replica.",
                ("ecall", "replica"),
            ).labels(ecall=ecall_name, replica=str(self.replica)).inc()
            registry.counter(
                "repro_recovery_backoff_seconds_total",
                "Simulated seconds charged as restart backoff, by fleet "
                "replica.",
                ("replica",),
            ).labels(replica=str(self.replica)).inc(self.policy.delay_s(restart))
            recorder.record(
                "recovery.enclave_restart",
                severity="warn",
                t_s=self._platform.clock.now_s,
                ecall=ecall_name,
                attempt=attempt,
                restart=restart,
                replica=self.replica,
            )
            self._platform.clock.charge(self.policy.delay_s(restart), "fault_backoff")
            self._handle.destroy()
            handle = self._platform.load_enclave(
                self._enclave_class,
                *self._ctor_args,
                trusted=self._trusted,
                **self._ctor_kwargs,
            )
            # Keep one log across generations so crossing deltas read by
            # open tracer spans stay monotonic.
            handle.side_channel = self.side_channel
            self.side_channel.record("restart", self._enclave_class.__name__)
            self._handle = handle
            self.restarts = restart
            if self._sealed_keys is not None:
                nonce = b"enclave-restart|%d" % restart
                self._handle.ecall("restore_keys", self._sealed_keys, nonce)
                self._reattest(nonce)

    def _reattest(self, nonce: bytes) -> None:
        """Prove the restarted instance is the same code on the same
        platform before trusting it with traffic (Fig. 2 flow, locally)."""
        from repro.sgx.attestation import AttestationVerificationService, QuotingService

        if self._quoting is None:
            self._quoting = QuotingService(self._platform)
            self._verifier = AttestationVerificationService()
            self._verifier.register_platform(self._quoting)
        report = self._handle.create_report(nonce)
        quote = self._quoting.quote(report)
        self._verifier.verify(
            quote, expected_mrenclave=self._handle.measurement.mrenclave
        )


class FleetManager:
    """N supervised enclave replicas sharing one HE key pair.

    The structural unlock for scaling out: a single supervised enclave caps
    both throughput (one flush in flight) and availability (one crash domain).
    The fleet keeps the paper's trust story intact while multiplying the
    enclave:

    * **Key authority.**  Replica 0's enclave generates the FV key pair and
      seals a snapshot (exactly the single-enclave supervisor flow).  The
      *authority* is thereafter the live replica with the lowest id.
    * **Sealed-key migration.**  A joining replica runs the same enclave
      class on the same platform, so the authority's sealed snapshot is
      recoverable inside it (MRENCLAVE + platform-bound sealing); the join
      protocol is ``restore_keys`` (unseal + in-enclave attest) followed by
      a quote verification against the *authority's* MRENCLAVE, over the
      same attestation chain user enrollment uses.  The host never sees key
      material -- only the sealed blob and public quotes transit.
    * **Routing.**  ``route()`` implements the least-loaded pick over the
      per-model routing table with a deterministic tie-break (cumulative
      dispatched images, then lowest replica id), so seeded serving runs
      assign requests to replicas reproducibly.
    * **Failover.**  ``retire()`` removes a dead replica from rotation; the
      scheduler's flush path re-dispatches an in-flight batch to a surviving
      replica.  Because every replica holds the bit-identical key pair, a
      failed-over request decrypts to bit-identical logits.

    Args:
        platform: the simulated SGX machine all replicas load on.
        enclave_class: trusted code, (re)loaded per replica.
        *args, **kwargs: forwarded to each enclave constructor (a fixed
            seed here makes every replica's keygen deterministic).
        replicas: initial fleet size (>= 1); replicas beyond the first join
            via sealed-key migration during :meth:`generate_keys`.
        trusted / policy: as for :class:`EnclaveSupervisor`.
    """

    def __init__(
        self,
        platform: "SgxPlatform",
        enclave_class: type["Enclave"],
        *args: Any,
        replicas: int = 1,
        trusted: bool = True,
        policy: RetryPolicy | None = None,
        **kwargs: Any,
    ) -> None:
        if replicas < 1:
            raise ValueError("a fleet needs at least one replica")
        self._platform = platform
        self._enclave_class = enclave_class
        self._ctor_args = args
        self._ctor_kwargs = kwargs
        self._trusted = trusted
        self._policy = policy
        self._target = int(replicas)
        self._supervisors: dict[int, EnclaveSupervisor] = {}
        self._retired: dict[int, str] = {}
        self._dispatched_images: dict[int, int] = {}
        self._models: list[str] = []
        self._next_replica_id = 0
        self.key_generation = 0
        self.joins = 0
        self._quoting = None
        self._verifier = None
        self._spawn_replica()  # replica 0: the initial key authority

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def platform(self) -> "SgxPlatform":
        return self._platform

    def live_replicas(self) -> list[int]:
        """Ids of replicas currently in rotation, ascending."""
        return sorted(self._supervisors)

    def retired_replicas(self) -> dict[int, str]:
        """Retired replica ids mapped to the cause that removed them."""
        return dict(self._retired)

    @property
    def size(self) -> int:
        return len(self._supervisors)

    @property
    def authority_id(self) -> int:
        """The current key authority: the live replica with the lowest id."""
        if not self._supervisors:
            raise RecoveryExhausted(
                "the fleet has no live replicas left "
                f"(retired: {sorted(self._retired)})"
            )
        return min(self._supervisors)

    @property
    def authority(self) -> EnclaveSupervisor:
        return self._supervisors[self.authority_id]

    def replica(self, replica_id: int | None = None) -> EnclaveSupervisor:
        """The supervisor for ``replica_id`` (the authority when None)."""
        if replica_id is None:
            return self.authority
        supervisor = self._supervisors.get(replica_id)
        if supervisor is None:
            raise RecoveryExhausted(
                f"replica {replica_id} is not in rotation "
                f"(live: {self.live_replicas()})"
            )
        return supervisor

    def _spawn_replica(self) -> int:
        replica_id = self._next_replica_id
        self._next_replica_id += 1
        self._supervisors[replica_id] = EnclaveSupervisor(
            self._platform,
            self._enclave_class,
            *self._ctor_args,
            trusted=self._trusted,
            policy=self._policy,
            replica=replica_id,
            **self._ctor_kwargs,
        )
        self._dispatched_images[replica_id] = 0
        self._sync_gauge()
        return replica_id

    # ------------------------------------------------------------------
    # keys: authority generation and sealed-key migration
    # ------------------------------------------------------------------
    def generate_keys(self):
        """Generate the fleet key pair on the authority, then bring the
        fleet to its target size via sealed-key migration joins."""
        # Control-plane work gets its own derived context so key
        # provisioning spans stay attributable alongside request spans.
        with obs_context.activate(
            TraceContext.derive(
                "fleet:control",
                self.key_generation + 1,
                parent_id="fleet/generate_keys",
            )
        ):
            public = self.authority.ecall("generate_keys")
            self.key_generation += 1
            while self.size < self._target:
                self.add_replica()
        return public

    def add_replica(self) -> int:
        """Join one new replica through the sealed-key migration protocol.

        Load a fresh supervised enclave of the same class, restore the
        authority's sealed key snapshot inside it (the unseal succeeds only
        for the same MRENCLAVE on the same platform), then verify the new
        instance's quote against the authority's MRENCLAVE before admitting
        it to the routing table.

        Raises:
            SealingError: the snapshot does not unseal in the new replica.
            AttestationError: the join quote fails verification.
            RecoveryExhausted: keys were never generated.
        """
        blob = self.authority.sealed_keys
        if blob is None:
            raise RecoveryExhausted(
                "cannot join a replica before generate_keys: the authority "
                "holds no sealed key snapshot"
            )
        replica_id = self._spawn_replica()
        supervisor = self._supervisors[replica_id]
        nonce = b"fleet-join|%d|%d" % (self.key_generation, replica_id)
        # Joins triggered outside generate_keys (failover repair, scale-up)
        # derive their own control context; nested joins inherit.
        join_context = (
            None
            if obs_context.current()
            else TraceContext.derive(
                "fleet:join",
                self.joins + 1,
                parent_id=f"fleet/replica_join-{replica_id}",
            )
        )
        with obs_context.activate(join_context), self._platform.tracer.span(
            "fleet/replica_join",
            kind="span",
            replica=replica_id,
            authority=self.authority_id,
            key_generation=self.key_generation,
        ):
            try:
                supervisor.ecall("restore_keys", blob, nonce)
                self._verify_join(supervisor, nonce)
            except BaseException:
                # A replica that failed its join never enters rotation.
                del self._supervisors[replica_id]
                del self._dispatched_images[replica_id]
                self._sync_gauge()
                raise
            supervisor.adopt_sealed_keys(blob)
        self.joins += 1
        from repro.obs import metrics

        metrics.registry().counter(
            "repro_fleet_joins_total",
            "Replicas joined via quote-verified sealed-key migration.",
            ("replica",),
        ).labels(replica=str(replica_id)).inc()
        return replica_id

    def _verify_join(self, supervisor: EnclaveSupervisor, nonce: bytes) -> None:
        """Quote-verify a joining replica against the *authority's* code
        identity -- a replica running different code must not join, even
        though its own measurement would self-verify."""
        from repro.sgx.attestation import AttestationVerificationService, QuotingService

        if self._quoting is None:
            self._quoting = QuotingService(self._platform)
            self._verifier = AttestationVerificationService()
            self._verifier.register_platform(self._quoting)
        report = supervisor.create_report(nonce)
        quote = self._quoting.quote(report)
        self._verifier.verify(
            quote, expected_mrenclave=self.authority.measurement.mrenclave
        )

    def rotate_keys(self):
        """Generate a fresh fleet key pair and re-migrate it to every live
        replica.  Sessions enrolled under the previous generation can no
        longer decrypt new results -- the client SDK's session pinning
        detects exactly this on reconnect."""
        public = self.authority.ecall("generate_keys")
        self.key_generation += 1
        blob = self.authority.sealed_keys
        for replica_id in self.live_replicas():
            if replica_id == self.authority_id:
                continue
            supervisor = self._supervisors[replica_id]
            nonce = b"fleet-join|%d|%d" % (self.key_generation, replica_id)
            supervisor.ecall("restore_keys", blob, nonce)
            self._verify_join(supervisor, nonce)
            supervisor.adopt_sealed_keys(blob)
        return public

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def register_model(self, model: str) -> None:
        """Add a model to the routing table (all live replicas serve it:
        model weights live host-side, so any replica's enclave can run its
        activation stage)."""
        if model not in self._models:
            self._models.append(model)

    def routing_table(self) -> dict[str, tuple[int, ...]]:
        """Per-model routing table: which live replicas serve each model."""
        live = tuple(self.live_replicas())
        return {model: live for model in self._models}

    def route(
        self,
        model: str,
        *,
        busy: "frozenset[int] | set[int] | tuple[int, ...]" = (),
        exclude: "frozenset[int] | set[int] | tuple[int, ...]" = (),
    ) -> int | None:
        """Least-loaded live replica for ``model``, or None when all are
        busy/excluded.  Load is cumulative dispatched images; ties break on
        the lowest replica id, so seeded runs route identically."""
        candidates = [
            replica_id
            for replica_id in self.live_replicas()
            if replica_id not in busy and replica_id not in exclude
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda rid: (self._dispatched_images[rid], rid),
        )

    def note_dispatch(self, replica_id: int, model: str, images: int) -> None:
        """Account one dispatched flush against a replica's load."""
        self._dispatched_images[replica_id] += int(images)
        from repro.obs import metrics

        metrics.registry().counter(
            "repro_fleet_dispatch_images_total",
            "Images dispatched to each fleet replica, by model.",
            ("model", "replica"),
        ).labels(model=model, replica=str(replica_id)).inc(int(images))

    def dispatched_images(self) -> dict[int, int]:
        """Cumulative images dispatched per live replica (the load signal
        behind :meth:`route`)."""
        return {rid: self._dispatched_images[rid] for rid in self.live_replicas()}

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def kill_replica(self, replica_id: int) -> None:
        """Simulate host-level loss of one replica: its handle is destroyed
        (subsequent ECALLs raise ``EnclaveNotInitialized``) but it stays in
        rotation until a dispatch observes the failure and retires it --
        exactly the information a real fleet has."""
        self.replica(replica_id).destroy()

    def retire(self, replica_id: int, cause: BaseException | str) -> None:
        """Remove a dead replica from rotation (idempotent)."""
        supervisor = self._supervisors.pop(replica_id, None)
        if supervisor is None:
            return
        self._retired[replica_id] = str(cause)
        self._dispatched_images.pop(replica_id, None)
        self._sync_gauge()
        from repro.obs import metrics

        metrics.registry().counter(
            "repro_fleet_retirements_total",
            "Replicas retired from rotation after unrecoverable failures.",
            ("replica",),
        ).labels(replica=str(replica_id)).inc()
        recorder.record(
            "fleet.retire",
            severity="error",
            t_s=self._platform.clock.now_s,
            replica=replica_id,
            cause=str(cause),
            live_replicas=len(self._supervisors),
        )
        with self._platform.tracer.span(
            "fleet/replica_retired", kind="span", replica=replica_id,
            error=str(cause),
        ):
            pass

    def _sync_gauge(self) -> None:
        from repro.obs import metrics

        registry = metrics.registry()
        if registry.enabled:
            registry.gauge(
                "repro_fleet_replicas",
                "Live enclave replicas in the serving fleet.",
            ).set(len(self._supervisors))
