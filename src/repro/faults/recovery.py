"""Crash recovery: the enclave supervisor and its retry policy.

The paper's framework makes one enclave the key authority *and* plaintext
co-processor -- if it crashes mid-inference, every pipeline stalls and,
naively, the HE keys every enrolled user holds become unusable (a restarted
enclave would generate fresh ones).  The supervisor closes that gap with
the machinery a production deployment would use:

1. after ``generate_keys`` it immediately asks the enclave to *seal* its FV
   key pair (``snapshot_keys``) -- the blob is recoverable only by the same
   MRENCLAVE on the same platform, so persisting it to untrusted storage
   leaks nothing;
2. on an AEX-style crash (:class:`~repro.errors.EnclaveCrashed` -- and only
   that; a deliberate ``destroy()`` is never resurrected) it charges an
   exponential backoff to the *simulated* clock, reloads the enclave class,
   restores the sealed keys (``restore_keys``), and **re-attests** the new
   instance through the platform's quoting chain before trusting it;
3. the repaired handle re-issues the failed ECALL; enrolled users'
   ciphertexts remain decryptable because the restored key pair is
   bit-identical.

Every recovery action is recorded as a ``recovery/enclave_restart`` span on
the platform tracer, so traces show not just *that* a run degraded but what
it cost.  All timing flows through :class:`~repro.sgx.clock.SimClock` --
there are no wall-clock sleeps, which is what keeps the chaos suite
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import (
    AttestationError,
    EnclaveCrashed,
    RecoveryExhausted,
    SealingError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sgx.enclave import Enclave, EnclaveHandle, SgxPlatform
    from repro.sgx.measurement import Measurement
    from repro.sgx.sealing import SealedBlob, SealingPolicy


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff policy for crashed ECALLs.

    Attributes:
        max_attempts: total tries per ECALL (first call + retries).
        backoff_s: simulated seconds charged before the first restart.
        backoff_factor: multiplier per subsequent restart.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")

    def delay_s(self, restart: int) -> float:
        """Backoff before the ``restart``-th restart (1-based)."""
        return self.backoff_s * self.backoff_factor ** (restart - 1)


def run_with_kernel_degradation(tracer, scheme: str, fn):
    """Run one inference with graceful FUSED -> REFERENCE degradation.

    ``fn`` is the pipeline's single-shot inference; the kernel equivalence
    guard (:func:`repro.he.kernels.guard`) is consulted first.  If it trips
    -- :class:`~repro.errors.KernelGuardError`, only reachable through an
    armed fault plan -- the library permanently falls back to the reference
    profile, records a ``recovery/kernel_degrade`` span, and retries once.
    Both profiles are bit-identical by construction, so the caller observes
    the same logits either way; what changes is the performance profile,
    which the trace records.
    """
    from repro.errors import KernelGuardError
    from repro.he import kernels
    from repro.obs import metrics

    kernels.record_active_profile()
    try:
        kernels.guard(scheme)
        return fn()
    except KernelGuardError as trip:
        with tracer.span(
            "recovery/kernel_degrade", kind="span", scheme=scheme, error=str(trip)
        ):
            kernels.degrade_to_reference()
            metrics.registry().counter(
                "repro_recovery_kernel_degradations_total",
                "FUSED -> REFERENCE kernel profile degradations.",
                ("scheme",),
            ).labels(scheme=scheme).inc()
        return fn()


class EnclaveSupervisor:
    """A crash-aware drop-in for :class:`~repro.sgx.enclave.EnclaveHandle`.

    Exposes the same surface pipelines use (``ecall``, ``seal``/``unseal``,
    ``create_report``, ``side_channel``, ``measurement``, ``destroy``) while
    transparently restarting the enclave on injected or genuine
    :class:`~repro.errors.EnclaveCrashed` failures.  One side-channel log is
    shared across restarts so crossing accounting stays monotonic.

    Args:
        platform: the simulated SGX machine.
        enclave_class: trusted code to (re)load.
        *args, **kwargs: forwarded to the enclave constructor on every
            (re)load -- a deterministic seed here makes restarted key
            generation reproduce the fault-free keys exactly.
        trusted: False supervises a FakeSGX handle (same recovery path).
        policy: retry/backoff policy (defaults apply when omitted).
    """

    def __init__(
        self,
        platform: "SgxPlatform",
        enclave_class: type["Enclave"],
        *args: Any,
        trusted: bool = True,
        policy: RetryPolicy | None = None,
        **kwargs: Any,
    ) -> None:
        self._platform = platform
        self._enclave_class = enclave_class
        self._ctor_args = args
        self._ctor_kwargs = kwargs
        self._trusted = trusted
        self.policy = policy if policy is not None else RetryPolicy()
        self._handle: "EnclaveHandle" = platform.load_enclave(
            enclave_class, *args, trusted=trusted, **kwargs
        )
        self.side_channel = self._handle.side_channel
        self.restarts = 0
        self._sealed_keys: "SealedBlob | None" = None
        self._quoting = None
        self._verifier = None

    # ------------------------------------------------------------------
    # the EnclaveHandle surface
    # ------------------------------------------------------------------
    @property
    def platform(self) -> "SgxPlatform":
        return self._platform

    @property
    def trusted(self) -> bool:
        return self._handle.trusted

    @property
    def measurement(self) -> "Measurement":
        return self._handle.measurement

    @property
    def handle(self) -> "EnclaveHandle":
        """The currently live handle (changes across restarts)."""
        return self._handle

    def seal(self, data: bytes, policy: "SealingPolicy | None" = None) -> "SealedBlob":
        if policy is None:
            return self._handle.seal(data)
        return self._handle.seal(data, policy)

    def unseal(self, blob: "SealedBlob") -> bytes:
        return self._handle.unseal(blob)

    def create_report(self, user_data: bytes):
        return self._handle.create_report(user_data)

    def destroy(self) -> None:
        """Deliberate teardown -- the supervisor will NOT resurrect it."""
        self._handle.destroy()

    # ------------------------------------------------------------------
    # the resilient ECALL path
    # ------------------------------------------------------------------
    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Issue an ECALL, restarting the enclave on crashes.

        Raises:
            RecoveryExhausted: the retry policy gave up, or a restart
                itself failed (unsealable keys, re-attestation rejected).
            EnclaveNotInitialized: the handle was deliberately destroyed.
        """
        policy = self.policy
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = self._handle.ecall(name, *args, **kwargs)
                if name == "generate_keys":
                    # Snapshot inside the retried region: a crash anywhere
                    # between keygen and snapshot re-runs keygen, which is
                    # consistent because no user has seen the keys yet.
                    self._sealed_keys = self._handle.ecall("snapshot_keys")
                return result
            except EnclaveCrashed as crash:
                if attempt >= policy.max_attempts:
                    raise RecoveryExhausted(
                        f"ECALL {name!r} still crashing after {attempt} attempts"
                    ) from crash
                try:
                    self._restart(name, attempt, crash)
                except EnclaveCrashed as restart_crash:
                    # The restart sequence itself was hit; spend an attempt
                    # and come around again if any remain.
                    if attempt + 1 >= policy.max_attempts:
                        raise RecoveryExhausted(
                            f"enclave restart for ECALL {name!r} keeps crashing"
                        ) from restart_crash
                except (SealingError, AttestationError) as fatal:
                    raise RecoveryExhausted(
                        f"enclave restart for ECALL {name!r} is unrecoverable: "
                        f"{fatal}"
                    ) from fatal
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # restart internals
    # ------------------------------------------------------------------
    def _restart(self, ecall_name: str, attempt: int, crash: EnclaveCrashed) -> None:
        """Backoff, reload, restore sealed keys, re-attest -- as one traced
        recovery action."""
        restart = self.restarts + 1
        with self._platform.tracer.span(
            "recovery/enclave_restart",
            kind="span",
            side_channel=self.side_channel,
            ecall=ecall_name,
            attempt=attempt,
            restart=restart,
            error=str(crash),
        ):
            from repro.obs import metrics

            registry = metrics.registry()
            registry.counter(
                "repro_recovery_enclave_restarts_total",
                "Enclave restarts performed by the supervisor, by failed ECALL.",
                ("ecall",),
            ).labels(ecall=ecall_name).inc()
            registry.counter(
                "repro_recovery_backoff_seconds_total",
                "Simulated seconds charged as restart backoff.",
            ).inc(self.policy.delay_s(restart))
            self._platform.clock.charge(self.policy.delay_s(restart), "fault_backoff")
            self._handle.destroy()
            handle = self._platform.load_enclave(
                self._enclave_class,
                *self._ctor_args,
                trusted=self._trusted,
                **self._ctor_kwargs,
            )
            # Keep one log across generations so crossing deltas read by
            # open tracer spans stay monotonic.
            handle.side_channel = self.side_channel
            self.side_channel.record("restart", self._enclave_class.__name__)
            self._handle = handle
            self.restarts = restart
            if self._sealed_keys is not None:
                nonce = b"enclave-restart|%d" % restart
                self._handle.ecall("restore_keys", self._sealed_keys, nonce)
                self._reattest(nonce)

    def _reattest(self, nonce: bytes) -> None:
        """Prove the restarted instance is the same code on the same
        platform before trusting it with traffic (Fig. 2 flow, locally)."""
        from repro.sgx.attestation import AttestationVerificationService, QuotingService

        if self._quoting is None:
            self._quoting = QuotingService(self._platform)
            self._verifier = AttestationVerificationService()
            self._verifier.register_platform(self._quoting)
        report = self._handle.create_report(nonce)
        quote = self._quoting.quote(report)
        self._verifier.verify(
            quote, expected_mrenclave=self._handle.measurement.mrenclave
        )
