"""Deterministic, seedable fault injection: plans, rules and process arming.

The serving stack assumes the enclave, the attestation chain and the HE
noise budget always behave -- yet the paper's own design (§IV) makes the
enclave a single trusted co-processor whose crash, EPC eviction or
key-provisioning failure stalls every pipeline.  This module provides the
*deterministic* half of the chaos story: a :class:`FaultPlan` (seeded RNG
plus per-site rules) can be armed process-wide, and instrumented sites
across ``repro.sgx``, ``repro.he`` and ``repro.serve`` consult it.

Design constraints, in order:

* **Zero overhead disarmed.**  Every site gates on :func:`is_armed` -- a
  module-global ``is None`` check -- before building any context.  With no
  plan armed, pipelines execute the exact pre-fault-layer code path and
  produce bit-identical ciphertext bytes (asserted by
  ``tests/faults/test_zero_overhead.py``).
* **Determinism.**  A plan is a pure function of its seed and the sequence
  of eligible site hits: the same plan against the same workload fires the
  same faults.  Probabilistic rules draw from the plan's own
  ``numpy`` generator, never from global randomness; counting rules
  (``after`` / ``max_fires``) use per-rule hit counters.
* **Observability.**  Every fired fault is appended to the plan's
  :attr:`FaultPlan.events` log, and sites with a tracer in reach
  additionally record a zero-duration ``fault/<site>`` span so traces show
  exactly where a run degraded.

Instrumented sites (see DESIGN.md §11 for the recovery semantics):

========================== ====================================================
``sgx.ecall``              AEX-style crash inside ``EnclaveHandle.ecall``; the
                           handle is lost until the supervisor restarts it
``sgx.epc.touch``          EPC eviction storm (all resident pages evicted);
                           a perturbation -- results are unchanged, paging
                           costs accrue
``sgx.attestation.quote``  the quoting enclave refuses to sign
``sgx.attestation.verify`` the verification service rejects the quote
``sgx.sealing.unseal``     sealed-blob recovery fails (key provisioning)
``he.serialize.deserialize`` wire bytes are corrupted before parsing
                           (bit flip or truncation, per ``rule.action``)
``he.noise.decrypt``       the noise budget is exhausted at decrypt time
``he.kernels.guard``       the FUSED/REFERENCE equivalence guard trips
``serve.loop.timer``       timer storm: the serving loop's deadline timer is
                           duplicated many times over; dispatch must stay
                           idempotent (a perturbation -- results unchanged)
``serve.loop.flush_done``  the serving loop's flush-completion event is lost;
                           the always-armed watchdog re-delivers the finished
                           flush's results (a perturbation -- late, not lost)
``serve.fleet.replica``    host-level loss of one fleet replica at dispatch
                           (``name`` = replica id): the replica's enclave is
                           destroyed mid-flush and the scheduler must fail
                           the batch over to a surviving replica (a
                           perturbation -- results unchanged, bit-identical
                           logits from the survivor)
``parallel.worker``        SIGKILL of one flush-execution worker process at
                           unit dispatch (``name`` = worker id): the pool
                           generation is retired and every unacknowledged
                           work unit replays in-process (a perturbation --
                           results unchanged, byte-identical output)
``graph.pass``             a graph-optimizer pass raises mid-compile
                           (``name`` = pass name): the compiler discards the
                           partially rewritten graph and degrades to the
                           unoptimized reference graph (a perturbation --
                           results unchanged, bit-identical ciphertext
                           bytes, counted by
                           ``repro_graph_degradations_total``)
========================== ====================================================
"""

from __future__ import annotations

import fnmatch
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError

#: Actions perturbation sites understand (``FaultRule.action``).
ACTIONS = ("raise", "evict_all", "bitflip", "truncate")


@dataclass(frozen=True)
class FaultRule:
    """One per-site injection rule.

    Attributes:
        site: site name the rule applies to; ``fnmatch`` pattern, so
            ``"sgx.*"`` matches every SGX-layer site.
        name: optional ``fnmatch`` filter against the site's ``name``
            context (e.g. the ECALL method name); ``None`` matches all.
        probability: chance of firing per eligible hit, drawn from the
            plan's seeded RNG (1.0 = always).
        after: number of eligible hits to let pass before the rule may fire
            (0 = eligible immediately) -- the deterministic way to target
            "the third crossing".
        max_fires: cap on total fires (``None`` = unlimited; the
            "unrecoverable" setting for crash rules).
        error: exception type to raise; ``None`` lets the site apply its
            default (e.g. ``EnclaveCrashed`` at ``sgx.ecall``).
        action: what perturbation sites should do (one of :data:`ACTIONS`);
            ``"raise"`` -- the default -- means inject the error.
    """

    site: str
    name: str | None = None
    probability: float = 1.0
    after: int = 0
    max_fires: int | None = 1
    error: type[BaseException] | None = None
    action: str = "raise"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(f"probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ReproError(f"after must be >= 0, got {self.after}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ReproError("max_fires must be >= 1 (or None for unlimited)")
        if self.action not in ACTIONS:
            raise ReproError(f"unknown action {self.action!r}; expected one of {ACTIONS}")
        if self.error is not None and not (
            isinstance(self.error, type) and issubclass(self.error, BaseException)
        ):
            raise ReproError("error must be an exception type")


@dataclass
class FaultEvent:
    """One fired fault: which rule, at which site, on which eligible hit."""

    site: str
    rule: FaultRule
    hit: int
    fire: int
    context: dict = field(default_factory=dict)


class FaultPlan:
    """A seeded set of fault rules; deterministic given the call sequence.

    Args:
        seed: seeds the plan's private RNG (used only by rules with
            ``probability < 1``).
        rules: the injection rules, consulted in order -- the first rule
            that fires wins the hit.
    """

    def __init__(self, seed: int, rules: list[FaultRule] | tuple[FaultRule, ...] = ()):
        self.seed = seed
        self.rules = list(rules)
        self._rng = np.random.default_rng(seed)
        self._hits: dict[int, int] = {}
        self._fires: dict[int, int] = {}
        self.events: list[FaultEvent] = []

    def poll(self, site: str, **context) -> FaultEvent | None:
        """Consult the plan at ``site``; returns the fired event or None."""
        for idx, rule in enumerate(self.rules):
            if not fnmatch.fnmatchcase(site, rule.site):
                continue
            if rule.name is not None and not fnmatch.fnmatchcase(
                str(context.get("name", "")), rule.name
            ):
                continue
            hit = self._hits.get(idx, 0) + 1
            self._hits[idx] = hit
            if hit <= rule.after:
                continue
            fires = self._fires.get(idx, 0)
            if rule.max_fires is not None and fires >= rule.max_fires:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            self._fires[idx] = fires + 1
            event = FaultEvent(
                site=site, rule=rule, hit=hit, fire=fires + 1, context=dict(context)
            )
            self.events.append(event)
            # Only fired events reach the registry; the disarmed path never
            # gets here, preserving the zero-overhead property.
            from repro.obs import metrics

            metrics.registry().counter(
                "repro_fault_fires_total",
                "Injected faults fired from the armed plan, by site.",
                ("site",),
            ).labels(site=site).inc()
            from repro.obs import recorder

            recorder.record(
                "fault.fire",
                severity="warn",
                site=site,
                name=rule.name,
                fire=fires + 1,
                context={k: str(v) for k, v in context.items()},
            )
            return event
        return None

    def fires(self, site: str | None = None) -> int:
        """Total faults fired (optionally only at ``site``)."""
        if site is None:
            return len(self.events)
        return sum(1 for e in self.events if e.site == site)


# ----------------------------------------------------------------------
# process-wide arming
# ----------------------------------------------------------------------
_armed: FaultPlan | None = None


def is_armed() -> bool:
    """Cheap gate every instrumented site checks before doing any work."""
    return _armed is not None


def active_plan() -> FaultPlan | None:
    """The currently armed plan, if any."""
    return _armed


def arm(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide; returns it for chaining."""
    global _armed
    _armed = plan
    return plan


def disarm() -> FaultPlan | None:
    """Remove the armed plan (no-op when none); returns the previous one."""
    global _armed
    previous = _armed
    _armed = None
    return previous


@contextmanager
def armed(plan: FaultPlan):
    """Arm ``plan`` for the block's duration, restoring the prior state."""
    global _armed
    previous = _armed
    _armed = plan
    try:
        yield plan
    finally:
        _armed = previous


def poll(site: str, **context) -> FaultEvent | None:
    """Consult the armed plan (None when disarmed or nothing fires)."""
    plan = _armed
    if plan is None:
        return None
    return plan.poll(site, **context)


def inject(site: str, default_error: type[BaseException], **context) -> None:
    """Poll ``site`` and raise the rule's error (or ``default_error``).

    The one-line form for pure raise-sites (attestation, sealing, noise);
    perturbation sites call :func:`poll` and interpret the action
    themselves.
    """
    event = poll(site, **context)
    if event is None:
        return
    error = event.rule.error if event.rule.error is not None else default_error
    raise error(f"injected fault at {site} (hit {event.hit}, fire {event.fire})")
