"""Deterministic fault injection and recovery (``repro.faults``).

Two halves:

* :mod:`repro.faults.plan` -- seedable :class:`FaultPlan`/:class:`FaultRule`
  machinery that instrumented sites across the enclave/serving stack
  consult when armed (and skip, at zero cost, when not);
* :mod:`repro.faults.recovery` -- the :class:`EnclaveSupervisor` that every
  pipeline routes its ECALLs through: retry with exponential backoff on the
  simulated clock, enclave restart with sealed-key restoration and
  re-attestation.

See DESIGN.md §11 for the fault model and ``tests/faults/`` for the chaos
suite that proves the recovery semantics.
"""

from repro.faults.plan import (
    ACTIONS,
    FaultEvent,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    armed,
    disarm,
    inject,
    is_armed,
    poll,
)
from repro.faults.recovery import (
    EnclaveSupervisor,
    FleetManager,
    RetryPolicy,
    run_with_kernel_degradation,
)

__all__ = [
    "ACTIONS",
    "EnclaveSupervisor",
    "FleetManager",
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_plan",
    "arm",
    "armed",
    "disarm",
    "inject",
    "is_armed",
    "poll",
    "run_with_kernel_degradation",
]
