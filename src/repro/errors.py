"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """Invalid or inconsistent encryption / simulation parameters."""


class EncodingError(ReproError, ValueError):
    """A value cannot be encoded into (or decoded from) the plaintext ring."""


class NoiseBudgetExhausted(ReproError, ArithmeticError):
    """A ciphertext's invariant noise grew past the decryptable threshold."""


class SerializationError(ParameterError):
    """A serialized payload is malformed, truncated or corrupt.

    Derives from :class:`ParameterError` so existing callers that guard
    deserialization with ``except ParameterError`` keep working.
    """


class KernelGuardError(ReproError, RuntimeError):
    """The runtime kernel-equivalence guard tripped for the FUSED profile.

    Recovery is graceful degradation: the serving stack switches to the
    REFERENCE kernel profile and retries (see ``repro.he.kernels.degrade``).
    """


class GraphPassError(ReproError, RuntimeError):
    """A graph-optimizer pass failed mid-compile.

    Recovery is graceful degradation: the compiler discards the partially
    rewritten graph and executes the unoptimized reference graph instead
    (see ``repro.graph.optimizer.compile_graph``), counted by the
    ``repro_graph_degradations_total`` metric.
    """


class MetricsError(ReproError, ValueError):
    """A metrics-registry family or sample was misused (negative counter
    increment, label mismatch, conflicting re-registration)."""


class TraceFormatError(ReproError, ValueError):
    """An exported trace document is malformed (unknown span kind, missing
    required fields) and cannot be rebuilt into a span tree."""


class KeyMismatchError(ReproError, ValueError):
    """An operation mixed keys or ciphertexts from different contexts."""


class EnclaveError(ReproError, RuntimeError):
    """Generic enclave-simulator failure."""


class EnclaveMemoryError(EnclaveError, MemoryError):
    """The enclave exceeded its committed heap allowance."""


class EnclaveNotInitialized(EnclaveError):
    """An ECALL was issued against an enclave that was never created."""


class EnclaveCrashed(EnclaveError):
    """The enclave was lost mid-execution (AEX-style crash).

    The handle stays unusable until the enclave is reloaded; the
    :class:`~repro.faults.EnclaveSupervisor` treats this error -- and only
    this error -- as the signal to restart, re-attest and re-provision keys.
    """


class RecoveryExhausted(EnclaveError):
    """The enclave restart/retry policy gave up.

    Raised by :class:`~repro.faults.EnclaveSupervisor` after
    ``RetryPolicy.max_attempts`` consecutive crashes, or when a restart
    itself fails unrecoverably (sealed keys unrecoverable, re-attestation
    rejected).  ``__cause__`` carries the final underlying failure.
    """


class AttestationError(EnclaveError):
    """Remote attestation failed (bad measurement, tampered quote, ...)."""


class SealingError(EnclaveError):
    """Sealed-blob integrity check failed or the blob belongs to another enclave."""


class ArenaError(ReproError, ValueError):
    """Ciphertext arena misuse: exhausted capacity, foreign or freed views."""


class ParallelError(ReproError, RuntimeError):
    """The shared-memory worker pool failed (stalled units, dead workers
    past recovery, or a misconfigured worker count)."""


class ModelError(ReproError, ValueError):
    """Neural-network model construction or shape inference failed."""


class PipelineError(ReproError, RuntimeError):
    """A privacy-preserving inference pipeline was misused or misconfigured."""


class ServeError(PipelineError):
    """Base class for request-scheduler failures (``repro.serve``).

    Derives from :class:`PipelineError` so existing callers that guard the
    serving facade with ``except PipelineError`` keep working.
    """


class UnknownModelError(ServeError, KeyError):
    """A request named a model the edge server has not provisioned."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message
        return RuntimeError.__str__(self)


class QueueFullError(ServeError):
    """The scheduler's bounded queue rejected a request (backpressure)."""


class BatchTooLargeError(ServeError):
    """A single request exceeds the scheduler's slot-packing capacity."""


class ResponseNotReady(ServeError):
    """A pending response was read before its batch was flushed."""


class OverloadedError(ServeError):
    """Admission control shed the request: the estimated queue wait already
    exceeds the serving loop's admission SLO, so accepting it would only
    poison tail latency for everyone queued behind it.  Typed so callers
    can distinguish "retry later / back off" from a hard failure."""


class DeadlineEvictedError(ServeError):
    """The serving loop evicted a queued request whose hard SLO deadline
    can no longer be met: the earliest completion any future flush could
    give it lies past ``slo_deadline_s``, so its slots go to requests that
    can still make their deadlines."""


class ClientError(ReproError, RuntimeError):
    """Base class for client-SDK session failures (``repro.client``).

    Each transition of the attested-connection state machine (CONNECT ->
    VERIFY_QUOTE -> SESSION_PINNED -> READY) fails with its own subclass,
    so callers can distinguish "retry the connection" from "this endpoint
    is not the enclave you enrolled with".
    """


class ClientStateError(ClientError):
    """A session method was called out of state-machine order, or after the
    session reached its terminal FAILED state."""


class ClientConnectError(ClientError):
    """The CONNECT transition failed: the fleet endpoint has no live
    replicas or hosts no models."""


class QuoteVerificationError(ClientError):
    """The VERIFY_QUOTE transition failed: the endpoint's attestation quote
    did not verify (wrong code identity, unprovisioned platform, tampered
    payload binding).  Terminal -- the session refuses all further use."""


class SessionPinError(ClientError):
    """The SESSION_PINNED invariant was violated: on (re)connect the
    endpoint delivered a key pair whose fingerprint differs from the one
    this session pinned -- a key-rotated (or impostor) replica.  Terminal."""


class RequestFailedError(ServeError):
    """A scheduled request failed during its (packed) flush.

    The scheduler resolves every queued request -- a failed flush never
    leaves a future permanently :class:`ResponseNotReady`.  ``__cause__``
    carries the underlying failure (a poisoned ciphertext's
    :class:`PipelineError`, an unrecoverable :class:`RecoveryExhausted`, ...).
    """
