"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """Invalid or inconsistent encryption / simulation parameters."""


class EncodingError(ReproError, ValueError):
    """A value cannot be encoded into (or decoded from) the plaintext ring."""


class NoiseBudgetExhausted(ReproError, ArithmeticError):
    """A ciphertext's invariant noise grew past the decryptable threshold."""


class KeyMismatchError(ReproError, ValueError):
    """An operation mixed keys or ciphertexts from different contexts."""


class EnclaveError(ReproError, RuntimeError):
    """Generic enclave-simulator failure."""


class EnclaveMemoryError(EnclaveError, MemoryError):
    """The enclave exceeded its committed heap allowance."""


class EnclaveNotInitialized(EnclaveError):
    """An ECALL was issued against an enclave that was never created."""


class AttestationError(EnclaveError):
    """Remote attestation failed (bad measurement, tampered quote, ...)."""


class SealingError(EnclaveError):
    """Sealed-blob integrity check failed or the blob belongs to another enclave."""


class ModelError(ReproError, ValueError):
    """Neural-network model construction or shape inference failed."""


class PipelineError(ReproError, RuntimeError):
    """A privacy-preserving inference pipeline was misused or misconfigured."""


class ServeError(PipelineError):
    """Base class for request-scheduler failures (``repro.serve``).

    Derives from :class:`PipelineError` so existing callers that guard the
    serving facade with ``except PipelineError`` keep working.
    """


class UnknownModelError(ServeError, KeyError):
    """A request named a model the edge server has not provisioned."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message
        return RuntimeError.__str__(self)


class QueueFullError(ServeError):
    """The scheduler's bounded queue rejected a request (backpressure)."""


class BatchTooLargeError(ServeError):
    """A single request exceeds the scheduler's slot-packing capacity."""


class ResponseNotReady(ServeError):
    """A pending response was read before its batch was flushed."""
