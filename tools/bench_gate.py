#!/usr/bin/env python
"""Benchmark regression gate: compare fresh bench runs against baselines.

The two benchmark scripts (``benchmarks/bench_hotpath_kernels.py`` and
``benchmarks/bench_serving_throughput.py``) emit JSON reports; this tool
compares a fresh pair against the checked-in reports under
``benchmarks/baselines/`` and exits non-zero when a gated metric regressed
beyond tolerance.  Because the reports mix *ratio* metrics (speedups --
stable across machines, the real regression signal) with *timing* metrics
(absolute seconds -- machine-dependent), the two classes carry separate
tolerances:

* ratio metrics fail when ``current < baseline * (1 - tolerance)``
  (higher is better) -- default tolerance 0.35;
* timing metrics fail when ``current > baseline * (1 + timing_tolerance)``
  (lower is better) -- default tolerance 3.0, deliberately loose so only
  order-of-magnitude blowups trip CI from a different machine;
* boolean invariants (``bit_identical``, ``predictions_match``) are hard:
  any ``False`` fails regardless of tolerance.

Usage::

    python tools/bench_gate.py --current-dir .            # compare existing
    python tools/bench_gate.py --run --smoke              # run benches first
    python tools/bench_gate.py --run --smoke --report gate_report.json
    python tools/bench_gate.py --run --smoke --bench slo  # one bench only

Refreshing baselines (after an intentional performance change)::

    python benchmarks/bench_hotpath_kernels.py --smoke \
        --out benchmarks/baselines/BENCH_hotpath.json
    python benchmarks/bench_serving_throughput.py --smoke --min-speedup 1.0 \
        --out benchmarks/baselines/BENCH_serving.json
    python benchmarks/bench_serving_slo.py --smoke --min-speedup 1.0 \
        --out benchmarks/baselines/BENCH_slo.json
    python benchmarks/bench_fleet_scaling.py --smoke --min-speedup 1.0 \
        --out benchmarks/baselines/BENCH_fleet.json
    python benchmarks/bench_parallel_scaling.py --smoke --min-speedup 1.0 \
        --out benchmarks/baselines/BENCH_parallel.json
    python benchmarks/bench_graph_optimizer.py --smoke --min-speedup 1.0 \
        --out benchmarks/baselines/BENCH_graph.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class MetricSpec:
    """One gated value inside a bench report.

    Attributes:
        path: dotted path into the report JSON (e.g. ``ntt.forward_speedup``).
        kind: ``ratio`` (higher better), ``timing`` (lower better) or
            ``invariant`` (must be truthy in *both* reports).
    """

    path: str
    kind: str


BENCHES: dict[str, dict] = {
    "hotpath": {
        "file": "BENCH_hotpath.json",
        "script": "benchmarks/bench_hotpath_kernels.py",
        "metrics": (
            MetricSpec("speedup", "ratio"),
            MetricSpec("ntt.forward_speedup", "ratio"),
            MetricSpec("ntt.inverse_speedup", "ratio"),
            MetricSpec("fused.simulated_s", "timing"),
            MetricSpec("bit_identical.logits", "invariant"),
            MetricSpec("bit_identical.encrypted_input", "invariant"),
            MetricSpec("bit_identical.op_tallies", "invariant"),
        ),
    },
    "serving": {
        "file": "BENCH_serving.json",
        "script": "benchmarks/bench_serving_throughput.py",
        "metrics": (
            MetricSpec("speedup", "ratio"),
            MetricSpec("packed.images_per_s", "ratio"),
            MetricSpec("packed.simulated_s", "timing"),
            MetricSpec("predictions_match", "invariant"),
        ),
    },
    "slo": {
        "file": "BENCH_slo.json",
        "script": "benchmarks/bench_serving_slo.py",
        "metrics": (
            MetricSpec("throughput_ratio", "ratio"),
            MetricSpec("continuous.images_per_s", "ratio"),
            MetricSpec("continuous.occupancy_mean", "ratio"),
            MetricSpec("continuous.p99_queue_wait_s", "timing"),
            MetricSpec("slo.p99_bounded", "invariant"),
            MetricSpec("slo.shed_rate_bounded", "invariant"),
            MetricSpec("slo.all_tickets_resolved", "invariant"),
            MetricSpec("bit_identical.logits", "invariant"),
        ),
    },
    "fleet": {
        "file": "BENCH_fleet.json",
        "script": "benchmarks/bench_fleet_scaling.py",
        "metrics": (
            MetricSpec("scaling.ratio_2x", "ratio"),
            MetricSpec("scaling.ratio_4x", "ratio"),
            MetricSpec("fleets.4.images_per_s", "ratio"),
            MetricSpec("fleets.4.p99_queue_wait_s", "timing"),
            MetricSpec("invariants.bit_identical", "invariant"),
            MetricSpec("invariants.all_tickets_resolved", "invariant"),
            MetricSpec("invariants.failover_resolved", "invariant"),
            MetricSpec("invariants.failover_bit_identical", "invariant"),
        ),
    },
    "parallel": {
        "file": "BENCH_parallel.json",
        "script": "benchmarks/bench_parallel_scaling.py",
        "metrics": (
            MetricSpec("scaling.ratio_2x", "ratio"),
            MetricSpec("scaling.ratio_4x", "ratio"),
            MetricSpec("runs.4.images_per_s", "ratio"),
            MetricSpec("runs.4.p99_queue_wait_s", "timing"),
            MetricSpec("invariants.speedup_floor", "invariant"),
            MetricSpec("invariants.byte_identical", "invariant"),
            MetricSpec("invariants.bit_identical", "invariant"),
            MetricSpec("invariants.all_tickets_resolved", "invariant"),
            MetricSpec("invariants.chaos_recovered", "invariant"),
            MetricSpec("invariants.chaos_byte_identical", "invariant"),
        ),
    },
    "graph": {
        "file": "BENCH_graph.json",
        "script": "benchmarks/bench_graph_optimizer.py",
        "metrics": (
            MetricSpec("hybrid.speedup_safe", "ratio"),
            MetricSpec("hybrid.speedup_aggressive", "ratio"),
            MetricSpec("cryptonets.speedup_safe", "ratio"),
            MetricSpec("hybrid.safe_simulated_s", "timing"),
            MetricSpec("invariants.bit_identical", "invariant"),
            MetricSpec("invariants.speedup_floor", "invariant"),
        ),
    },
}


def _lookup(report: dict, dotted: str):
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _check_metric(spec: MetricSpec, baseline, current, args) -> dict:
    """Evaluate one metric; returns a result row with ``ok`` and ``detail``."""
    row = {
        "metric": spec.path,
        "kind": spec.kind,
        "baseline": baseline,
        "current": current,
    }
    if baseline is None or current is None:
        row["ok"] = False
        row["detail"] = "missing from report"
        return row
    if spec.kind == "invariant":
        row["ok"] = bool(current)
        row["detail"] = "holds" if row["ok"] else "violated"
        return row
    baseline = float(baseline)
    current = float(current)
    if spec.kind == "ratio":
        floor = baseline * (1.0 - args.tolerance)
        row["ok"] = current >= floor
        row["detail"] = f"floor {floor:.4g} (baseline {baseline:.4g} - {args.tolerance:.0%})"
    else:  # timing
        ceiling = baseline * (1.0 + args.timing_tolerance)
        row["ok"] = current <= ceiling
        row["detail"] = (
            f"ceiling {ceiling:.4g} (baseline {baseline:.4g} + {args.timing_tolerance:.0%})"
        )
    return row


def _run_bench(name: str, smoke: bool, out: Path) -> None:
    cmd = [sys.executable, str(REPO_ROOT / BENCHES[name]["script"]), "--out", str(out)]
    if smoke:
        cmd.append("--smoke")
    # The gate, not the bench's absolute threshold, is the arbiter here:
    # absolute speedup floors are machine-dependent, relative-to-baseline
    # comparison is not.
    cmd += ["--min-speedup", "1.0"]
    print(f"running {name} bench: {' '.join(cmd[1:])}")
    subprocess.run(cmd, check=True, cwd=REPO_ROOT)


def gate(args) -> tuple[bool, dict]:
    """Compare current reports with baselines; returns (ok, report dict)."""
    results = {"benches": {}, "ok": True}
    for name in args.bench or list(BENCHES):
        bench = BENCHES[name]
        baseline_path = Path(args.baseline_dir) / bench["file"]
        current_path = Path(args.current_dir) / bench["file"]
        bench_result = {
            "baseline": str(baseline_path),
            "current": str(current_path),
            "metrics": [],
        }
        results["benches"][name] = bench_result
        missing = [p for p in (baseline_path, current_path) if not p.is_file()]
        if missing:
            bench_result["ok"] = False
            bench_result["error"] = f"missing report(s): {[str(p) for p in missing]}"
            results["ok"] = False
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        base_mode = _lookup(baseline, "config.mode")
        cur_mode = _lookup(current, "config.mode")
        if base_mode != cur_mode:
            bench_result["ok"] = False
            bench_result["error"] = (
                f"config.mode mismatch (baseline {base_mode!r} vs current "
                f"{cur_mode!r}); regenerate the baseline with the matching "
                f"bench flags (see module docstring)"
            )
            results["ok"] = False
            continue
        rows = [
            _check_metric(spec, _lookup(baseline, spec.path), _lookup(current, spec.path), args)
            for spec in bench["metrics"]
        ]
        bench_result["metrics"] = rows
        bench_result["ok"] = all(row["ok"] for row in rows)
        results["ok"] = results["ok"] and bench_result["ok"]
    return results["ok"], results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        default=str(REPO_ROOT / "benchmarks" / "baselines"),
        help="directory holding the checked-in baseline reports",
    )
    parser.add_argument(
        "--current-dir",
        default=str(REPO_ROOT),
        help="directory holding the fresh BENCH_*.json reports",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="run the selected benchmark scripts into --current-dir first",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(BENCHES),
        default=None,
        help="gate only this bench (repeatable; default: all)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="pass --smoke to the benches (with --run)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed relative drop for ratio metrics (default 0.35)",
    )
    parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=3.0,
        help="allowed relative growth for absolute timings (default 3.0)",
    )
    parser.add_argument(
        "--report", default=None, help="write the gate verdict as JSON to this path"
    )
    args = parser.parse_args(argv)

    if args.run:
        for name in args.bench or list(BENCHES):
            _run_bench(name, args.smoke, Path(args.current_dir) / BENCHES[name]["file"])

    ok, results = gate(args)
    for name, bench_result in results["benches"].items():
        status = "PASS" if bench_result.get("ok") else "FAIL"
        print(f"[{status}] {name}")
        if "error" in bench_result:
            print(f"    {bench_result['error']}")
        for row in bench_result["metrics"]:
            mark = "ok  " if row["ok"] else "FAIL"
            print(
                f"    {mark} {row['metric']}: {row['current']} "
                f"vs baseline {row['baseline']} ({row['detail']})"
            )
    if args.report:
        Path(args.report).write_text(json.dumps(results, indent=2) + "\n")
        print(f"gate report written to {args.report}")
    if not ok:
        print("bench gate: REGRESSION DETECTED", file=sys.stderr)
        return 1
    print("bench gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
