#!/usr/bin/env python
"""Telemetry inspector for exported traces and flight-recorder dumps.

Consumes the JSON artifacts the demo entry point writes
(``python -m repro --serve-demo --trace-json traces.json --flight-dump
flight.json``; single-pipeline runs write one trace object instead of an
array -- both shapes are accepted) and renders or checks them:

* ``costs``    -- merge pipeline traces into a :class:`ProfileReport` and
  print the per-node measured cost table, most expensive first.
* ``timeline`` -- print each request's nested span timeline with
  virtual-time offsets (``--trace-id`` filters to traces carrying that
  request's context).
* ``check``    -- telemetry invariants: every span in every trace must
  resolve a trace id (own attr or inherited), per-node attributed cost
  must reconcile against pipeline wall clock, and -- when ``--flight``
  is given -- the flight dump must parse with strictly increasing
  sequence numbers and known severities.  Exits non-zero on violation.

Usage::

    python tools/obsctl.py costs --trace traces.json [--top 10]
    python tools/obsctl.py timeline --trace traces.json [--trace-id ID]
    python tools/obsctl.py check --trace traces.json [--flight flight.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import (  # noqa: E402
    profile_from_traces,
    render_timeline,
    resolve_trace_ids,
    spans_without_context,
    trace_from_dict,
)
from repro.obs.recorder import SEVERITIES  # noqa: E402


def _load_traces(path: str):
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    dicts = payload if isinstance(payload, list) else [payload]
    return [trace_from_dict(d) for d in dicts]


def _cmd_costs(args) -> int:
    traces = _load_traces(args.trace)
    pipelines = [t for t in traces if t.kind == "pipeline"]
    if not pipelines:
        print("no pipeline traces in input")
        return 1
    report = profile_from_traces(pipelines)
    print(report.render_table(top=args.top))
    return 0


def _cmd_timeline(args) -> int:
    traces = _load_traces(args.trace)
    if args.trace_id is not None:
        traces = [
            t
            for t in traces
            if any(args.trace_id in ids for _, ids in resolve_trace_ids(t))
        ]
        if not traces:
            print(f"no trace carries trace id {args.trace_id}")
            return 1
    for index, trace in enumerate(traces):
        if index:
            print()
        print(render_timeline(trace))
    return 0


def _check_flight(path: str) -> list[str]:
    problems: list[str] = []
    try:
        with open(path, encoding="utf-8") as fh:
            events = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"flight dump unreadable: {exc}"]
    if not isinstance(events, list):
        return ["flight dump is not a JSON array"]
    last_seq = -1
    for event in events:
        seq = event.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(f"non-monotone seq at {event!r}")
            break
        last_seq = seq
        if event.get("severity") not in SEVERITIES:
            problems.append(f"unknown severity in {event!r}")
        if not event.get("kind"):
            problems.append(f"event without kind: {event!r}")
    return problems


def _cmd_check(args) -> int:
    problems: list[str] = []
    traces = _load_traces(args.trace)
    for index, trace in enumerate(traces):
        for span in spans_without_context(trace):
            problems.append(
                f"trace[{index}] {trace.name!r}: span {span.name!r} "
                "resolves no trace id"
            )
    pipelines = [t for t in traces if t.kind == "pipeline"]
    if pipelines:
        try:
            profile_from_traces(pipelines).reconcile()
        except Exception as exc:
            problems.append(str(exc))
    if args.flight is not None:
        problems.extend(_check_flight(args.flight))
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    flight_note = " + flight dump" if args.flight is not None else ""
    print(
        f"OK: {len(traces)} trace(s), {len(pipelines)} pipeline(s), "
        f"context + profile reconciliation{flight_note} checks passed"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="obsctl", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    costs = sub.add_parser("costs", help="per-node measured cost table")
    costs.add_argument("--trace", required=True, help="trace JSON path")
    costs.add_argument("--top", type=int, default=None, help="show top N rows")
    costs.set_defaults(func=_cmd_costs)

    timeline = sub.add_parser("timeline", help="per-request span timelines")
    timeline.add_argument("--trace", required=True, help="trace JSON path")
    timeline.add_argument("--trace-id", default=None, help="filter by trace id")
    timeline.set_defaults(func=_cmd_timeline)

    check = sub.add_parser("check", help="telemetry invariants (CI gate)")
    check.add_argument("--trace", required=True, help="trace JSON path")
    check.add_argument("--flight", default=None, help="flight dump JSON path")
    check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
