#!/usr/bin/env python3
"""Quickstart: privacy-preserving digit inference in ~60 lines.

Trains the paper's 4-layer CNN (Table VI, dimensionally reduced so this
runs in seconds), deploys it behind the hybrid HE+SGX pipeline, and infers
a handful of encrypted digits -- verifying that encrypted predictions match
the plaintext model exactly, the paper's central accuracy claim.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    build_pipeline,
    PlaintextPipeline,
    train_paper_models,
)


def main() -> None:
    print("== 1. Train the paper's CNN on synthetic MNIST (reduced dims) ==")
    models = train_paper_models(
        train_size=600, test_size=150, epochs=6,
        image_size=12, channels=2, kernel_size=3, verbose=True,
    )
    quantized = models.quantized_sigmoid()

    print("\n== 2-3. Deploy behind the unified factory ==")
    # build_pipeline auto-sizes FV parameters for the scheme; any alias from
    # repro.core.SCHEME_ALIASES works ("hybrid", "encryptsgx", "simd", ...).
    pipeline = build_pipeline("encryptsgx", quantized, poly_degree=1024, seed=7)
    print(f"   scheme: {pipeline.scheme}")
    print(f"   {pipeline.params.describe()}")
    print(f"   model needs t >= {quantized.required_plain_modulus()}")
    print(f"   enclave measurement: {pipeline.enclave.measurement.mrenclave[:16]}...")

    print("\n== 4. Encrypted inference on 4 held-out digits ==")
    images = models.dataset.test_images[:4]
    labels = models.dataset.test_labels[:4]
    result = pipeline.infer(images)
    print(result.describe())

    plain = PlaintextPipeline(quantized).infer(images)
    print(f"\n   true labels:           {labels.tolist()}")
    print(f"   plaintext predictions: {plain.predictions.tolist()}")
    print(f"   encrypted predictions: {result.predictions.tolist()}")
    exact = np.array_equal(result.logits, plain.logits)
    print(f"   encrypted logits == plaintext logits: {exact}")
    if not exact:
        raise SystemExit("BUG: the hybrid pipeline must be bit-exact")
    print("\nDone: the edge server computed on ciphertexts + enclave only;")
    print("it never saw a pixel in the clear outside trusted code.")


if __name__ == "__main__":
    main()
