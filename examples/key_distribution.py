#!/usr/bin/env python3
"""Key distribution walkthrough: TTP baseline vs SGX remote attestation.

Reproduces the architectural comparison of the paper's Figs. 1 and 2:

* Fig. 1 (baseline): an external trusted third party generates keys and
  hands them out -- it knows everyone's secret key, the channel is
  wiretappable, and relinearization keys need extra rounds.
* Fig. 2 (the framework): the edge server's own enclave generates the
  keys and proves its code identity through a simulated DCAP attestation
  chain.  The client side is the SDK's attested-connection state machine
  (:class:`~repro.client.AttestedClient`): CONNECT reads the fleet
  descriptor, VERIFY_QUOTE runs the authenticated DH exchange and checks
  the quote, SESSION_PINNED fingerprints the delivered key pair, READY
  builds the crypto endpoints.  Tampering anywhere breaks a specific
  transition with a specific typed error, demonstrably.

Run:
    python examples/key_distribution.py
"""

from __future__ import annotations

from repro.client import AttestedClient, SessionState
from repro.core import EdgeServer, PipelineSpec, TrustedThirdParty, train_paper_models
from repro.errors import QuoteVerificationError, SessionPinError
from repro.he import paper_parameters
from repro.sgx import AttestationVerificationService


def demo_ttp(params) -> None:
    print("== Fig. 1 baseline: trusted third party ==")
    ttp = TrustedThirdParty(params, seed=1)
    keys = ttp.issue_keys("vehicle-user-42")
    ttp.issue_relin_keys("vehicle-user-42")
    print(f"   keys issued; communication rounds: {ttp.communication_rounds}")
    print(f"   TTP knows the user's secret key: {ttp.knows_secret_of('vehicle-user-42')}")
    user_id, leaked = ttp.wiretap_log[0]
    print(f"   an eavesdropper on the channel captured {user_id}'s full key pair: "
          f"{leaked.secret is keys.secret}")


def demo_attested() -> None:
    print("\n== Fig. 2: the enclave as built-in key authority ==")
    models = train_paper_models(train_size=200, test_size=40, epochs=2,
                                image_size=10, channels=2, kernel_size=3)
    quantized = models.quantized_sigmoid()
    spec = PipelineSpec(scheme="hybrid", poly_degree=256, batching=True)
    server = EdgeServer.from_spec(spec, seed=2, sizing_model=quantized)
    server.provision_model("digits", quantized)
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)  # Intel-style provisioning
    print(f"   enclave MRENCLAVE: {server.descriptor()['mrenclave'][:20]}...")

    user = AttestedClient(server, verifier, b"\x2a" * 32)
    print(f"   session starts {user.state.value}; walking the state machine:")
    descriptor = user.connect()
    print(f"     CONNECT       -> {user.state.value} "
          f"(models {descriptor['models']}, replicas {descriptor['replicas']})")
    user.verify_quote()
    print(f"     VERIFY_QUOTE  -> {user.state.value} (quote checked, DH done)")
    fingerprint = user.pin_session()
    print(f"     PIN_SESSION   -> {user.state.value} "
          f"(key fingerprint {fingerprint[:16]}...)")
    user.activate()
    print(f"     ACTIVATE      -> {user.state.value}")
    image = models.dataset.test_images[:1]
    prediction = user.predict("digits", image)[0]
    print(f"   delivered keys round-trip an encrypted inference: "
          f"prediction {prediction} (label {models.dataset.test_labels[0]})")

    print("\n   -- attack drills --")
    impostor = AttestedClient(server, verifier, b"\x05" * 32,
                              expected_mrenclave="0" * 64)
    impostor.connect()
    try:
        impostor.verify_quote()
    except QuoteVerificationError as exc:
        print(f"   enclave code identity mismatch  -> {impostor.state.value}: {exc}")

    rogue = AttestedClient(server, AttestationVerificationService(), b"\x06" * 32)
    rogue.connect()
    try:
        rogue.verify_quote()
    except QuoteVerificationError as exc:
        print(f"   unprovisioned platform          -> {rogue.state.value}: {exc}")

    server.fleet.rotate_keys()
    try:
        user.reconnect()
    except SessionPinError as exc:
        print(f"   fleet rotated keys under a pin  -> {user.state.value}: {exc}")
    assert user.state is SessionState.FAILED

    print("\n   No third party exists; the host only ever relays public or")
    print("   encrypted bytes; a FAILED session never gets a second chance --")
    print("   trust is re-established only by a fresh AttestedClient.")


def main() -> None:
    params = paper_parameters()  # the paper's n=1024 SEAL 2.1 configuration
    print(f"FV parameters: {params.describe()}\n")
    demo_ttp(params)
    demo_attested()


if __name__ == "__main__":
    main()
