#!/usr/bin/env python3
"""Key distribution walkthrough: TTP baseline vs SGX remote attestation.

Reproduces the architectural comparison of the paper's Figs. 1 and 2:

* Fig. 1 (baseline): an external trusted third party generates keys and
  hands them out -- it knows everyone's secret key, the channel is
  wiretappable, and relinearization keys need extra rounds.
* Fig. 2 (the framework): the edge server's own enclave generates the keys,
  proves its code identity through a simulated DCAP attestation chain, and
  delivers the key pair over an authenticated DH channel bound into the
  attested user_data.  Tampering anywhere breaks the flow, demonstrably.

Run:
    python examples/key_distribution.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import (
    InferenceEnclave,
    SgxKeyDistribution,
    TrustedThirdParty,
    UserClient,
)
from repro.errors import AttestationError
from repro.he import Context, Decryptor, Encryptor, ScalarEncoder, paper_parameters
from repro.sgx import AttestationVerificationService, QuotingService, SgxPlatform


def demo_ttp(params) -> None:
    print("== Fig. 1 baseline: trusted third party ==")
    ttp = TrustedThirdParty(params, seed=1)
    keys = ttp.issue_keys("vehicle-user-42")
    ttp.issue_relin_keys("vehicle-user-42")
    print(f"   keys issued; communication rounds: {ttp.communication_rounds}")
    print(f"   TTP knows the user's secret key: {ttp.knows_secret_of('vehicle-user-42')}")
    user_id, leaked = ttp.wiretap_log[0]
    print(f"   an eavesdropper on the channel captured {user_id}'s full key pair: "
          f"{leaked.secret is keys.secret}")


def demo_attested(params) -> None:
    print("\n== Fig. 2: the enclave as built-in key authority ==")
    platform = SgxPlatform()
    enclave = platform.load_enclave(InferenceEnclave, params, seed=2)
    enclave.ecall("generate_keys")
    quoting = QuotingService(platform, platform_id="cav-edge-7")
    verifier = AttestationVerificationService()
    verifier.register_platform(quoting)  # Intel-style provisioning
    print(f"   enclave MRENCLAVE: {enclave.measurement.mrenclave[:20]}...")

    user = UserClient(
        params=params,
        verifier=verifier,
        expected_mrenclave=enclave.measurement.mrenclave,
        entropy=np.random.default_rng(3).bytes(32),
    )
    service = SgxKeyDistribution(platform=platform, enclave=enclave, quoting=quoting)
    quote, sealed = service.serve_exchange(user.begin_exchange())
    print(f"   quote from platform {quote.platform_id}: "
          f"{len(sealed.ciphertext)} encrypted key bytes in transit")
    keys = user.complete_exchange(quote, sealed)

    context = Context(params)
    encoder = ScalarEncoder(context)
    # The paper's t = 4 only leaves the centered range (-2, 2] -- encode 2.
    ct = Encryptor(context, keys.public, np.random.default_rng(4)).encrypt(encoder.encode(2))
    value = encoder.decode(Decryptor(context, keys.secret).decrypt(ct))
    print(f"   delivered keys round-trip an encryption: 2 -> {value}")

    print("\n   -- attack drills --")
    forged = dataclasses.replace(sealed, ciphertext=bytes(len(sealed.ciphertext)))
    try:
        user2 = UserClient(params=params, verifier=verifier,
                           expected_mrenclave=enclave.measurement.mrenclave,
                           entropy=np.random.default_rng(5).bytes(32))
        q2, s2 = service.serve_exchange(user2.begin_exchange())
        user2.complete_exchange(q2, forged)
    except AttestationError as exc:
        print(f"   host swaps the key payload      -> rejected: {exc}")

    try:
        user3 = UserClient(params=params, verifier=verifier,
                           expected_mrenclave="0" * 64,
                           entropy=np.random.default_rng(6).bytes(32))
        q3, s3 = service.serve_exchange(user3.begin_exchange())
        user3.complete_exchange(q3, s3)
    except AttestationError as exc:
        print(f"   enclave code identity mismatch  -> rejected: {exc}")

    rogue_verifier = AttestationVerificationService()
    try:
        user4 = UserClient(params=params, verifier=rogue_verifier,
                           expected_mrenclave=enclave.measurement.mrenclave,
                           entropy=np.random.default_rng(7).bytes(32))
        q4, s4 = service.serve_exchange(user4.begin_exchange())
        user4.complete_exchange(q4, s4)
    except AttestationError as exc:
        print(f"   unprovisioned platform          -> rejected: {exc}")

    print("\n   No third party exists; the host only ever relays public or")
    print("   encrypted bytes; relinearization keys come from the enclave on")
    print("   demand (and the refresh path removes the need for them at all).")


def main() -> None:
    params = paper_parameters()  # the paper's n=1024 SEAL 2.1 configuration
    print(f"FV parameters: {params.describe()}\n")
    demo_ttp(params)
    demo_attested(params)


if __name__ == "__main__":
    main()
