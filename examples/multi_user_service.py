#!/usr/bin/env python3
"""A complete edge deployment: sealed models, many users, SIMD throughput.

Puts the whole reproduction together the way an integrator would:

1. the operator provisions an :class:`EdgeServer` with a trained model and
   seals it to untrusted disk (surviving enclave restarts);
2. several users enroll through remote attestation, each receiving keys
   over the authenticated channel;
3. requests are served one-user-at-a-time through the EdgeServer facade,
   and then *concurrently* through the request scheduler, which coalesces
   the users' requests into one slot-packed pipeline pass (paper Section
   VIII) -- cross-user packing is legal because the enclave is the key
   authority, so every enrolled user shares its key pair.

Run:
    python examples/multi_user_service.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    EdgeServer,
    PlaintextPipeline,
    build_pipeline,
    parameters_for_pipeline,
    train_paper_models,
)
from repro.sgx import AttestationVerificationService


def main() -> None:
    print("== Operator: train, quantize, provision, seal ==")
    models = train_paper_models(train_size=600, test_size=150, epochs=5,
                                image_size=12, channels=2, kernel_size=3)
    quantized = models.quantized_sigmoid()
    params = parameters_for_pipeline(quantized, 1024, batching=True)
    print(f"   {params.describe()} (batching: {params.supports_batching()})")

    server = EdgeServer(params, seed=21)
    server.provision_model("digits", quantized)
    sealed = server.seal_model("digits")
    print(f"   model sealed for untrusted storage: {sealed.byte_size()} bytes")

    print("\n== Simulated restart: a fresh enclave restores the sealed model ==")
    restarted = EdgeServer(params, platform=server.platform, seed=22)
    restarted.restore_model(sealed)
    print(f"   restored models: {restarted.models()}")

    print("\n== Users enroll via remote attestation ==")
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    sessions = [
        server.enroll_user(entropy=bytes([i]) * 32, verifier=verifier)
        for i in range(1, 4)
    ]
    print(f"   {len(sessions)} users hold keys delivered by the enclave itself")

    print("\n== Serving: one user at a time through the facade ==")
    reference = PlaintextPipeline(quantized)
    for i, session in enumerate(sessions):
        image = models.dataset.test_images[i : i + 1]
        label = models.dataset.test_labels[i]
        result = server.infer("digits", session.encrypt("digits", image))
        prediction = session.decrypt(result)[0]
        expected = reference.infer(image).predictions[0]
        print(f"   user {i}: label={label} prediction={prediction} "
              f"(matches plaintext: {prediction == expected})")

    print("\n== Throughput mode: concurrent requests, one packed flush ==")
    clock = server.platform.clock
    images = models.dataset.test_images[: len(sessions)]
    start = clock.now_s
    responses = [
        server.scheduler.submit("digits", session.encrypt("digits", images[i : i + 1]))
        for i, session in enumerate(sessions)
    ]
    served = server.scheduler.drain()
    packed_s = clock.now_s - start
    stats = server.scheduler.stats
    print(f"   {served} requests served in {stats.flushes} flush "
          f"({packed_s:.2f}s simulated, {packed_s / served:.2f}s per request)")
    plain = reference.infer(images)
    for i, (session, response) in enumerate(zip(sessions, responses)):
        result = response.result()
        prediction = session.decrypt(result)[0]
        print(f"   user {i}: prediction={prediction} "
              f"(shared a batch of {result.packed_batch}, "
              f"matches plaintext: {prediction == plain.predictions[i]})")
    print(f"   slot capacity: {server.scheduler.capacity} images per flush")

    print("\n== Same engine, library-style: the SIMD pipeline via the factory ==")
    simd = build_pipeline("simd", quantized, params, seed=23)
    batch = models.dataset.test_images[:8]
    fleet = simd.infer(batch)
    plain8 = reference.infer(batch)
    print(f"   8 images: {fleet.total_elapsed_s:.2f}s simulated "
          f"({fleet.total_elapsed_s / 8:.2f}s per image)")
    print(f"   bit-exact vs plaintext: {np.array_equal(fleet.logits, plain8.logits)}")


if __name__ == "__main__":
    main()
