#!/usr/bin/env python3
"""A complete edge deployment: sealed models, many users, SIMD throughput.

Puts the whole reproduction together the way an integrator would:

1. the operator provisions an :class:`EdgeServer` with a trained model and
   seals it to untrusted disk (surviving enclave restarts);
2. several users enroll through remote attestation, each receiving keys
   over the authenticated channel;
3. requests are served one-user-at-a-time through the EdgeServer facade,
   and then as a slot-packed SIMD batch (paper Section VIII) to show the
   per-image cost collapse.

Run:
    python examples/multi_user_service.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    EdgeServer,
    PlaintextPipeline,
    SimdHybridPipeline,
    parameters_for_pipeline,
    train_paper_models,
)
from repro.sgx import AttestationVerificationService


def main() -> None:
    print("== Operator: train, quantize, provision, seal ==")
    models = train_paper_models(train_size=600, test_size=150, epochs=5,
                                image_size=12, channels=2, kernel_size=3)
    quantized = models.quantized_sigmoid()
    params = parameters_for_pipeline(quantized, 1024, batching=True)
    print(f"   {params.describe()} (batching: {params.supports_batching()})")

    server = EdgeServer(params, seed=21)
    server.provision_model("digits", quantized)
    sealed = server.seal_model("digits")
    print(f"   model sealed for untrusted storage: {sealed.byte_size()} bytes")

    print("\n== Simulated restart: a fresh enclave restores the sealed model ==")
    restarted = EdgeServer(params, platform=server.platform, seed=22)
    restarted.restore_model(sealed)
    print(f"   restored models: {restarted.models()}")

    print("\n== Users enroll via remote attestation ==")
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    sessions = [
        server.enroll_user(entropy=bytes([i]) * 32, verifier=verifier)
        for i in range(1, 4)
    ]
    print(f"   {len(sessions)} users hold keys delivered by the enclave itself")

    print("\n== Serving: one user at a time through the facade ==")
    reference = PlaintextPipeline(quantized)
    for i, session in enumerate(sessions):
        image = models.dataset.test_images[i : i + 1]
        label = models.dataset.test_labels[i]
        result = server.infer("digits", session.encrypt("digits", image))
        prediction = session.decrypt(result)[0]
        expected = reference.infer(image).predictions[0]
        print(f"   user {i}: label={label} prediction={prediction} "
              f"(matches plaintext: {prediction == expected})")

    print("\n== Throughput mode: the whole fleet in one SIMD batch ==")
    simd = SimdHybridPipeline(quantized, params, seed=23)
    batch = models.dataset.test_images[:8]
    single = simd.infer(batch[:1])
    fleet = simd.infer(batch)
    plain = reference.infer(batch)
    print(f"   1 image:  {single.total_elapsed_s:.2f}s simulated")
    print(f"   8 images: {fleet.total_elapsed_s:.2f}s simulated "
          f"({fleet.total_elapsed_s / 8:.2f}s per image)")
    print(f"   slot capacity: {simd.slot_count} images per batch")
    print(f"   bit-exact vs plaintext: {np.array_equal(fleet.logits, plain.logits)}")


if __name__ == "__main__":
    main()
