#!/usr/bin/env python3
"""A complete edge deployment: sealed models, many users, a replica fleet.

Puts the whole reproduction together the way an integrator would:

1. the operator describes the deployment declaratively -- a
   :class:`~repro.core.PipelineSpec` (scheme, parameters, fleet size,
   queue bounds) builds the :class:`~repro.core.EdgeServer`, whose two
   enclave replicas share one key pair via sealed-key migration -- then
   seals the trained model to untrusted disk (surviving enclave restarts);
2. several users enroll through the client SDK
   (:class:`~repro.client.AttestedClient`): each session walks
   CONNECT -> VERIFY_QUOTE -> SESSION_PINNED -> READY and pins the key
   fingerprint the enclave delivered;
3. requests are served one-user-at-a-time through the EdgeServer facade
   (a frozen :class:`~repro.serve.InferenceRequest` per call), then
   *concurrently* through the request scheduler, which coalesces the
   users' requests into one slot-packed pipeline pass (paper Section
   VIII) -- cross-user packing is legal because the enclave fleet is the
   key authority, so every enrolled user shares its key pair;
4. a replica is lost mid-service: the fleet retires it, the client
   reconnects against its pinned fingerprint, and the survivor's logits
   are bit-identical.

Run:
    python examples/multi_user_service.py
"""

from __future__ import annotations

import numpy as np

from repro.client import AttestedClient
from repro.core import (
    EdgeServer,
    PipelineSpec,
    PlaintextPipeline,
    build_pipeline,
    train_paper_models,
)
from repro.obs import render_timeline, resolve_trace_ids
from repro.serve import InferenceRequest
from repro.sgx import AttestationVerificationService


def main() -> None:
    print("== Operator: train, quantize, provision, seal ==")
    models = train_paper_models(train_size=600, test_size=150, epochs=5,
                                image_size=12, channels=2, kernel_size=3)
    quantized = models.quantized_sigmoid()
    spec = PipelineSpec(scheme="hybrid", poly_degree=1024, batching=True,
                        fleet_size=2)
    server = EdgeServer.from_spec(spec, seed=21, sizing_model=quantized)
    print(f"   {server.params.describe()} "
          f"(batching: {server.params.supports_batching()})")
    server.provision_model("digits", quantized)
    sealed = server.seal_model("digits")
    desc = server.descriptor()
    print(f"   fleet: replicas {desc['replicas']} share key generation "
          f"{desc['key_generation']} (authority: replica {desc['authority']})")
    print(f"   model sealed for untrusted storage: {sealed.byte_size()} bytes")

    print("\n== Simulated restart: a fresh enclave restores the sealed model ==")
    restarted = EdgeServer(server.params, platform=server.platform, seed=22)
    restarted.restore_model(sealed)
    print(f"   restored models: {restarted.models()}")

    print("\n== Users enroll through the client SDK ==")
    verifier = AttestationVerificationService()
    verifier.register_platform(server.quoting)
    clients = [
        AttestedClient(server, verifier, bytes([i]) * 32).establish()
        for i in range(1, 4)
    ]
    for i, client in enumerate(clients):
        print(f"   user {i}: {client.state.value}, pinned key "
              f"{client.pinned_fingerprint[:16]}...")

    print("\n== Serving: one user at a time through the facade ==")
    reference = PlaintextPipeline(quantized)
    for i, client in enumerate(clients):
        image = models.dataset.test_images[i : i + 1]
        label = models.dataset.test_labels[i]
        result = server.infer(client.request("digits", image))
        prediction = client.decrypt(result)[0]
        expected = reference.infer(image).predictions[0]
        print(f"   user {i}: label={label} prediction={prediction} "
              f"on replica {result.replica} "
              f"(matches plaintext: {prediction == expected})")

    print("\n== Throughput mode: concurrent requests, one packed flush ==")
    clock = server.platform.clock
    images = models.dataset.test_images[: len(clients)]
    start = clock.now_s
    responses = [
        server.scheduler.submit("digits", client.encrypt("digits", images[i : i + 1]))
        for i, client in enumerate(clients)
    ]
    served = server.scheduler.drain()
    packed_s = clock.now_s - start
    stats = server.scheduler.stats
    print(f"   {served} requests served in {stats.flushes} flush "
          f"({packed_s:.2f}s simulated, {packed_s / served:.2f}s per request)")
    plain = reference.infer(images)
    for i, (client, response) in enumerate(zip(clients, responses)):
        result = response.result()
        prediction = client.decrypt(result)[0]
        print(f"   user {i}: prediction={prediction} "
              f"(shared a batch of {result.packed_batch}, "
              f"matches plaintext: {prediction == plain.predictions[i]})")
    print(f"   slot capacity: {server.scheduler.capacity} images per flush")

    print("\n== Replica loss: failover keeps sessions and logits intact ==")
    victim = clients[0]
    image = models.dataset.test_images[:1]
    before = victim.decrypt_logits(victim.infer("digits", image))
    authority = server.fleet.authority_id
    server.fleet.kill_replica(authority)
    server.fleet.retire(authority, "host crash")
    victim.reconnect()
    after = victim.infer("digits", image)
    print(f"   replica {authority} lost; client reconnected "
          f"({victim.state.value}, pin unchanged)")
    print(f"   survivor replica {after.replica} logits bit-identical: "
          f"{np.array_equal(victim.decrypt_logits(after), before)}")

    print("\n== Telemetry: the failed-over request's trace timeline ==")
    # The client SDK injected a deterministic TraceContext into the request;
    # find the pipeline trace carrying it and print the per-span timeline.
    trace_id = after.context.trace_id
    failover_trace = next(
        t
        for t in reversed(server.platform.tracer.traces)
        if any(trace_id in ids for _, ids in resolve_trace_ids(t))
    )
    print(f"   request trace id: {trace_id}")
    print(render_timeline(failover_trace))

    print("\n== Same engine, library-style: the SIMD pipeline via a spec ==")
    simd_spec = PipelineSpec(scheme="simd", params=server.params)
    simd = build_pipeline(simd_spec, quantized, seed=23)
    batch = models.dataset.test_images[:8]
    packed = simd.infer(batch)
    plain8 = reference.infer(batch)
    print(f"   8 images: {packed.total_elapsed_s:.2f}s simulated "
          f"({packed.total_elapsed_s / 8:.2f}s per image)")
    print(f"   bit-exact vs plaintext: {np.array_equal(packed.logits, plain8.logits)}")


if __name__ == "__main__":
    main()
