#!/usr/bin/env python3
"""Case study (paper Section VII): connected and autonomous vehicles.

A CAV acts as a mobile edge server offering digit-recognition inference to
nearby smart devices.  Devices refuse to upload plaintext images (they leak
to the service provider and the car manufacturer), so the vehicle deploys
the hybrid HE+SGX framework:

1. the on-board enclave generates FV keys and proves itself to each device
   via remote attestation, shipping the key pair over the attested channel;
2. devices send homomorphically encrypted images;
3. the vehicle's untrusted runtime evaluates the linear layers over
   ciphertexts, the enclave handles sigmoid + pooling exactly;
4. devices decrypt their own results; the vehicle never sees pixels or
   predictions in the clear.

The script compares all four Fig. 8 schemes on the same request batch and
prints a per-stage cost breakdown.

Run:
    python examples/cav_edge_inference.py            # scaled-down (fast)
    REPRO_PAPER_DIMS=1 python examples/cav_edge_inference.py   # 28x28, slow
"""

from __future__ import annotations

import os

import numpy as np

from repro.core import (
    CryptonetsPipeline,
    HybridPipeline,
    PlaintextPipeline,
    parameters_for_pipeline,
    train_paper_models,
)
from repro.nn import accuracy_score


def main() -> None:
    paper_dims = bool(os.environ.get("REPRO_PAPER_DIMS"))
    dims = dict(image_size=28, channels=6, kernel_size=5) if paper_dims else dict(
        image_size=12, channels=2, kernel_size=3
    )
    batch_size = 10 if paper_dims else 3

    print("== CAV edge server: provisioning ==")
    models = train_paper_models(train_size=800, test_size=200, epochs=8, **dims)
    q_sigmoid = models.quantized_sigmoid()
    q_square = models.quantized_square()
    hybrid_params = parameters_for_pipeline(q_sigmoid, 1024, name="cav_hybrid")
    pure_params = parameters_for_pipeline(q_square, 1024, name="cav_pure_he")
    print(f"   hybrid:  {hybrid_params.describe()}")
    print(f"   pure HE: {pure_params.describe()}")

    requests = models.dataset.test_images[:batch_size]
    labels = models.dataset.test_labels[:batch_size]
    plain = PlaintextPipeline(q_sigmoid).infer(requests)

    print(f"\n== Serving a batch of {batch_size} encrypted ride-sharing requests ==")
    schemes = {
        "Encrypted (pure HE)": CryptonetsPipeline(q_square, pure_params, seed=3),
        "EncryptSGX (the framework)": HybridPipeline(
            q_sigmoid, hybrid_params, mode="batched", seed=3
        ),
        "EncryptFakeSGX (control)": HybridPipeline(
            q_sigmoid, hybrid_params, mode="fake", seed=3
        ),
    }
    results = {}
    for name, pipeline in schemes.items():
        results[name] = pipeline.infer(requests)
        print(f"\n--- {name} ---")
        print(results[name].describe())

    print("\n== Per-device outcome ==")
    hybrid = results["EncryptSGX (the framework)"]
    print(f"   labels:      {labels.tolist()}")
    print(f"   predictions: {hybrid.predictions.tolist()}")
    print(f"   accuracy:    {accuracy_score(hybrid.predictions, labels):.2f}")
    print(
        "   hybrid == plaintext logits:",
        np.array_equal(hybrid.logits, plain.logits),
    )

    pure_t = results["Encrypted (pure HE)"].total_elapsed_s
    hybrid_t = hybrid.total_elapsed_s
    print(
        f"\n== Headline ==\n   EncryptSGX saves "
        f"{(1 - hybrid_t / pure_t) * 100:.1f}% of the inference time vs pure HE "
        f"({hybrid_t:.2f}s vs {pure_t:.2f}s simulated for the batch; "
        f"the paper measured 39.6% on SEAL 2.1 + real SGX)."
    )


if __name__ == "__main__":
    main()
