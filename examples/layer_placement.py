#!/usr/bin/env python3
"""Layer placement analysis: where should each CNN operation run?

Walks the paper's Section VI decision process on live ciphertexts:

* activation functions: HE's polynomial substitute vs the enclave's exact
  evaluation (Fig. 5's three lines);
* pooling: SGXPool vs SGXDiv and the window-size crossover (Fig. 6);
* noise management: relinearization vs batched enclave refresh (Table V).

Run:
    python examples/layer_placement.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import measure_simulated
from repro.core import (
    InferenceEnclave,
    PoolingPlacementPolicy,
    measure_placement,
    parameters_for_pipeline,
    relinearize_refresh,
    sgx_refresh,
    sgx_refresh_one_by_one,
    train_paper_models,
)
from repro.he import Context, Encryptor, Evaluator, ScalarEncoder
from repro.he.keys import PublicKey
from repro.sgx import SgxPlatform


def main() -> None:
    models = train_paper_models(train_size=300, test_size=60, epochs=3,
                                image_size=12, channels=2, kernel_size=3)
    params = parameters_for_pipeline(models.quantized_square(), 1024)
    print(f"FV parameters: {params.describe()}\n")

    platform = SgxPlatform()
    enclave = platform.load_enclave(InferenceEnclave, params, seed=11)
    public = enclave.ecall("generate_keys")
    context = Context(params)
    public = PublicKey(context, public.p0_ntt, public.p1_ntt)
    rng = np.random.default_rng(11)
    encoder = ScalarEncoder(context)
    encryptor = Encryptor(context, public, rng)
    evaluator = Evaluator(context)
    relin = enclave.ecall("generate_relin_keys")

    print("== Activation: HE square substitute vs exact enclave sigmoid ==")
    feature_map = rng.integers(-40, 40, size=(1, 1, 8, 8))
    ct = encryptor.encrypt(encoder.encode(feature_map))
    he_t = min(measure_simulated(
        lambda: evaluator.relinearize(evaluator.square(ct), relin), platform.clock, 3))
    sgx_t = min(measure_simulated(
        lambda: enclave.ecall("sigmoid", ct, 10.0, 1000), platform.clock, 3))
    print(f"   EncryptSquare+relin: {he_t * 1e3:8.1f} ms  (approximate activation)")
    print(f"   SGXSigmoid:          {sgx_t * 1e3:8.1f} ms  (exact activation)")
    print(f"   -> enclave is {he_t / sgx_t:.1f}x faster AND exact\n")

    print("== Pooling: SGXPool vs SGXDiv across window sizes (Fig. 6) ==")
    big_map = rng.integers(0, 200, size=(1, 1, 12, 12))
    big_ct = encryptor.encrypt(encoder.encode(big_map))
    policy = PoolingPlacementPolicy()
    for window in (2, 3, 4, 6):
        choice = measure_placement(evaluator, enclave, big_ct, window)
        print(
            f"   window {window}: SGXPool {choice.sgx_pool_s * 1e3:7.1f} ms, "
            f"SGXDiv {choice.sgx_div_s * 1e3:7.1f} ms -> measured best: "
            f"{choice.best.value}, policy says: {policy.choose(window).value}"
        )

    print("\n== Noise management: relinearization vs enclave refresh (Table V) ==")
    batch = 16
    squared = evaluator.square(
        encryptor.encrypt(encoder.encode(rng.integers(-50, 50, size=batch)))
    )
    r1 = relinearize_refresh(evaluator, squared, relin, platform.clock)
    r2 = sgx_refresh_one_by_one(enclave, squared)
    r3 = sgx_refresh(enclave, squared)
    decryptor = enclave._instance._decryptor
    for outcome in (r1, r2, r3):
        budget = decryptor.invariant_noise_budget(outcome.ciphertext)
        print(
            f"   {outcome.method:20s}: {outcome.per_item_s * 1e3:7.2f} ms/ct, "
            f"remaining noise budget {budget:5.1f} bits"
        )
    print("\n   The batched refresh amortizes the crossing AND resets the noise")
    print("   to fresh level -- no relinearization keys ever leave the enclave.")


if __name__ == "__main__":
    main()
