#!/usr/bin/env python3
"""Beyond the paper: a multi-block CNN under the hybrid framework.

The paper stops at one conv block because pure HE makes depth prohibitively
expensive (Section VIII).  The hybrid framework does not: the enclave
re-encrypts at every activation, so a 2-block network runs under the same
modest FV parameters as a 1-block one -- this example shows it live,
including the per-block stage breakdown and the depth-independent noise
budget.

Run:
    python examples/deep_network.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    DeepHybridPipeline,
    parameters_for_pipeline,
    pure_he_modulus_bits_for_depth,
)
from repro.nn import DeepQuantizedCNN, deep_cnn, synthetic_mnist, train


def main() -> None:
    size = 18  # 18 -> conv 16 -> pool 8 -> conv 6 -> pool 3 -> dense
    print("== Train a 2-block CNN (conv-tanh-pool x2 -> dense) ==")
    model = deep_cnn(image_size=size, block_channels=(3, 4), kernel_size=3,
                     activation="tanh", rng=np.random.default_rng(1))
    print(model.summary())
    data = synthetic_mnist(train_size=800, test_size=200, seed=1)
    lo = (28 - size) // 2
    train_images = data.train_images[:, :, lo : lo + size, lo : lo + size]
    test_images = data.test_images[:, :, lo : lo + size, lo : lo + size]
    report = train(model, train_images.astype(np.float64) / 255.0,
                   data.train_labels, epochs=8, learning_rate=0.05,
                   eval_images=test_images.astype(np.float64) / 255.0,
                   eval_labels=data.test_labels)
    print(f"   test accuracy after training: {report.final_accuracy:.2f}")

    print("\n== Quantize and size parameters (depth-independent!) ==")
    quantized = DeepQuantizedCNN.from_float(model)
    params = parameters_for_pipeline(quantized, 1024)
    print(f"   {params.describe()}")
    pure_need = pure_he_modulus_bits_for_depth(
        quantized.depth, params.plain_modulus.bit_length(), params.poly_degree
    )
    print(f"   hybrid needs log2(q) = {params.coeff_modulus.bit_length()}; a "
          f"pure-HE evaluation of the same depth would need ~{pure_need:.0f} bits")

    print("\n== Encrypted inference, block by block ==")
    pipeline = DeepHybridPipeline(quantized, params, seed=2)
    batch = test_images[:3]
    result = pipeline.infer(batch)
    print(result.describe())
    print(f"   enclave crossings: {result.enclave_crossings} "
          f"(one per block, regardless of width)")
    exact = np.array_equal(result.logits, quantized.forward_int(batch))
    print(f"   bit-exact vs integer reference: {exact}")
    print(f"   labels:      {data.test_labels[:3].tolist()}")
    print(f"   predictions: {result.predictions.tolist()}")


if __name__ == "__main__":
    main()
