#!/usr/bin/env python3
"""SIMD batching extension (paper Section VIII).

The paper runs one value per ciphertext and notes that CRT batching would
multiply throughput by up to n (1024 for its parameters).  This example
implements that extension: a whole fleet of user queries is packed into the
slots of single ciphertexts, and one homomorphic op serves everyone.

Scenario: 1024 vehicles each submit one sensor reading; the edge server
computes the same affine risk score ``7 * x + 30`` for all of them in ONE
ciphertext multiply + add.

Run:
    python examples/simd_batching.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.he import (
    BatchEncoder,
    Context,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    ScalarEncoder,
)
from repro.he import modmath
from repro.he.params import EncryptionParams


def main() -> None:
    degree = 1024
    params = EncryptionParams(
        poly_degree=degree,
        coeff_primes=tuple(modmath.ntt_primes(30, degree, 3)),
        plain_modulus=modmath.ntt_primes(20, degree, 1)[0],  # batching prime
        name="simd_demo",
    )
    print(f"FV parameters: {params.describe()}")
    print(f"supports batching: {params.supports_batching()}\n")

    context = Context(params)
    rng = np.random.default_rng(5)
    keys = KeyGenerator(context, rng).generate()
    evaluator = Evaluator(context)
    encryptor = Encryptor(context, keys.public, rng)
    decryptor = Decryptor(context, keys.secret)
    batch = BatchEncoder(context)
    scalar = ScalarEncoder(context)

    fleet = rng.integers(0, 100, size=batch.slot_count)
    print(f"== {batch.slot_count} vehicles, one reading each ==")

    # SIMD path: everyone shares one ciphertext.
    start = time.perf_counter()
    packed = encryptor.encrypt(batch.encode(fleet))
    scored = evaluator.add_plain(
        evaluator.multiply_plain(packed, batch.encode(np.full(batch.slot_count, 7))),
        batch.encode(np.full(batch.slot_count, 30)),
    )
    scores = batch.decode(decryptor.decrypt(scored))
    simd_time = time.perf_counter() - start
    assert np.array_equal(scores, 7 * fleet + 30)
    print(f"   SIMD: {batch.slot_count} scores in {simd_time * 1e3:.1f} ms "
          f"(one encrypt, one C x P, one add)")

    # Paper-style path: one ciphertext per vehicle (sample 32 and extrapolate).
    sample = 32
    start = time.perf_counter()
    for x in fleet[:sample]:
        ct = encryptor.encrypt(scalar.encode(int(x)))
        out = evaluator.add_plain(
            evaluator.multiply_plain(ct, scalar.encode(7)), scalar.encode(30)
        )
        assert scalar.decode(decryptor.decrypt(out)) == 7 * int(x) + 30
    unbatched = (time.perf_counter() - start) / sample * batch.slot_count
    print(f"   one-per-ciphertext: ~{unbatched * 1e3:.0f} ms extrapolated "
          f"for the same fleet")
    print(f"\n   throughput gain: {unbatched / simd_time:,.0f}x "
          f"(paper's prediction: up to {batch.slot_count}x)")


if __name__ == "__main__":
    main()
