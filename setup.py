"""Legacy setup shim.

`pip install -e .` needs the `wheel` package for PEP 517 editable installs;
on minimal/offline environments without it, `python setup.py develop` (which
this shim enables) or the .pth fallback in the README work instead.
"""

from setuptools import setup

setup()
